package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"
)

// DefaultFleetTTL is how long a registration stays live without a fresh
// heartbeat before the coordinator treats the worker as gone.
const DefaultFleetTTL = 15 * time.Second

// DefaultHeartbeatInterval is the worker-side heartbeat period; three
// missed beats inside DefaultFleetTTL is the eviction budget.
const DefaultHeartbeatInterval = 5 * time.Second

// Heartbeat is the body a worker POSTs to the coordinator's
// /fleet/register endpoint — both the initial registration and every
// subsequent keep-alive. Addr is the base URL the coordinator should
// dial for shards; the load and health fields let the coordinator see a
// sick worker before its shards start failing.
type Heartbeat struct {
	// Addr is the worker's advertised base URL ("http://worker1:8081").
	Addr string `json:"addr"`
	// InFlightShards is how many /sweep/shard requests the worker is
	// currently streaming.
	InFlightShards int `json:"in_flight_shards"`
	// Healthy is the worker's own build/serving health; an unhealthy
	// worker keeps heartbeating (it is alive) but is not dispatched to.
	Healthy bool `json:"healthy"`
	// Detail optionally says why Healthy is false.
	Detail string `json:"detail,omitempty"`
}

// Member is one fleet registration as the coordinator sees it.
type Member struct {
	Heartbeat
	// Last is when the most recent heartbeat arrived.
	Last time.Time `json:"last"`
}

// Fleet is the coordinator-side membership registry: workers
// self-register and keep themselves alive with heartbeats; a
// registration that outlives the TTL without a fresh beat is expired.
// All methods are safe for concurrent use.
type Fleet struct {
	ttl time.Duration

	mu      sync.Mutex
	members map[string]Member
	// changed is closed and replaced whenever membership gains a new
	// (or returning) address, waking the dispatcher's reconcile loop
	// immediately instead of on its next tick.
	changed chan struct{}
}

// NewFleet returns an empty registry with the given liveness TTL
// (<= 0 takes DefaultFleetTTL).
func NewFleet(ttl time.Duration) *Fleet {
	if ttl <= 0 {
		ttl = DefaultFleetTTL
	}
	return &Fleet{ttl: ttl, members: make(map[string]Member), changed: make(chan struct{})}
}

// TTL returns the registry's liveness window.
func (f *Fleet) TTL() time.Duration { return f.ttl }

// Observe records one heartbeat (registration or keep-alive).
func (f *Fleet) Observe(hb Heartbeat) {
	now := time.Now()
	f.mu.Lock()
	_, known := f.members[hb.Addr]
	f.members[hb.Addr] = Member{Heartbeat: hb, Last: now}
	var wake chan struct{}
	if !known {
		wake, f.changed = f.changed, make(chan struct{})
	}
	f.mu.Unlock()
	mFleetHeartbeats.Inc()
	if wake != nil {
		close(wake)
		slog.Info("dsweep: worker registered", "addr", hb.Addr, "healthy", hb.Healthy)
	}
}

// Changed returns a channel that closes the next time a new worker
// registers. Callers re-arm by calling Changed again after it fires.
func (f *Fleet) Changed() <-chan struct{} {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.changed
}

// Members snapshots every registration that has not expired, expiring
// stale ones as a side effect.
func (f *Fleet) Members() []Member {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Member, 0, len(f.members))
	for addr, m := range f.members {
		if now.Sub(m.Last) > f.ttl {
			delete(f.members, addr)
			mFleetExpired.Inc()
			continue
		}
		out = append(out, m)
	}
	return out
}

// Live returns the members eligible for dispatch: fresh heartbeat and
// self-reported healthy.
func (f *Fleet) Live() []Member {
	members := f.Members()
	out := members[:0]
	for _, m := range members {
		if m.Healthy {
			out = append(out, m)
		}
	}
	return out
}

// Handler serves the registration protocol: POST with a Heartbeat JSON
// body registers or refreshes the sender. The response echoes the TTL
// so workers can sanity-check their heartbeat interval against it.
func (f *Fleet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var hb Heartbeat
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&hb); err != nil {
			http.Error(w, fmt.Sprintf(`{"error": "bad heartbeat: %v"}`, err), http.StatusUnprocessableEntity)
			return
		}
		if hb.Addr == "" {
			http.Error(w, `{"error": "heartbeat missing addr"}`, http.StatusUnprocessableEntity)
			return
		}
		f.Observe(hb)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			TTLSeconds float64 `json:"ttl_seconds"`
		}{f.ttl.Seconds()})
	})
}

// HeartbeatOptions configures a worker's registration loop.
type HeartbeatOptions struct {
	// Coordinator is the coordinator's fleet endpoint base
	// ("http://coord:9000"); the loop POSTs to <Coordinator>/fleet/register.
	Coordinator string
	// Advertise is the base URL this worker registers (what the
	// coordinator will dial for shards). Required.
	Advertise string
	// Interval between heartbeats (<= 0 takes DefaultHeartbeatInterval).
	Interval time.Duration
	// Status, when set, fills the heartbeat's load/health fields each
	// beat; Addr is always overwritten with Advertise. Nil reports an
	// idle healthy worker.
	Status func() Heartbeat
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// HeartbeatLoop registers the worker and keeps it alive until ctx ends.
// Transient delivery failures are logged and retried on the next beat —
// a coordinator restart must not kill its whole fleet. The first beat
// is sent immediately.
func HeartbeatLoop(ctx context.Context, opts HeartbeatOptions) error {
	if opts.Advertise == "" {
		return errors.New("dsweep: heartbeat needs an advertise address")
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: interval}
	}
	url := strings.TrimSuffix(opts.Coordinator, "/") + "/fleet/register"
	beat := func() {
		hb := Heartbeat{Healthy: true}
		if opts.Status != nil {
			hb = opts.Status()
		}
		hb.Addr = opts.Advertise
		body, err := json.Marshal(hb)
		if err != nil {
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			mFleetHeartbeatErrors.Inc()
			if ctx.Err() == nil {
				slog.Warn("dsweep: heartbeat failed", "coordinator", url, "err", err)
			}
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			mFleetHeartbeatErrors.Inc()
			slog.Warn("dsweep: heartbeat rejected", "coordinator", url, "status", resp.StatusCode)
		}
	}
	beat()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			beat()
		}
	}
}
