package dsweep

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/policyscope/policyscope/internal/bgp"
)

func TestCheckpointRoundTrip(t *testing.T) {
	refSweep(t)
	fp, err := NewFingerprint(ref.spec, "paper", len(ref.scenarios), 16, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cp, err := OpenCheckpoint(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Resumed() {
		t.Fatal("fresh checkpoint reports resumed")
	}
	recs := ref.impacts[:5]
	if err := cp.WriteShard(2, recs); err != nil {
		t.Fatal(err)
	}
	if !cp.Has(2) || cp.Has(1) || cp.CompletedCount() != 1 {
		t.Fatalf("completion state wrong: has2=%v has1=%v count=%d", cp.Has(2), cp.Has(1), cp.CompletedCount())
	}
	got, err := cp.ReadShard(2)
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, got) != mustJSON(t, recs) {
		t.Fatal("spooled records do not round-trip")
	}

	// Reopening with the same fingerprint resumes; a different
	// fingerprint is refused.
	cp2, err := OpenCheckpoint(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if !cp2.Resumed() || cp2.CompletedCount() != 1 || !cp2.Has(2) {
		t.Fatal("reopened checkpoint lost completion state")
	}
	other := fp
	other.ShardSize = 99
	if _, err := OpenCheckpoint(dir, other); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("fingerprint mismatch accepted: %v", err)
	}
	// A coordinator restarted with a different vantage set (e.g. a
	// changed -peers count) must not resume: the spooled records came
	// from the old vantages and would merge a mixed stream.
	vant := fp
	vant.Vantages = VantageFingerprint([]bgp.ASN{1, 2, 3})
	if _, err := OpenCheckpoint(dir, vant); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("vantage-set mismatch accepted: %v", err)
	}
}

// TestCheckpointResumeSkipsCompletedShards kills a coordinator after
// its first completed shard, resumes from the checkpoint, and proves —
// via the fake workers' shard-execution counters — that the completed
// shard is replayed from the spool, never re-executed, while the output
// stays byte-identical to the single-process run.
func TestCheckpointResumeSkipsCompletedShards(t *testing.T) {
	refSweep(t)
	n := len(ref.scenarios)
	size := (n + 3) / 4 // four shards
	shards := Partition(n, size)
	fp, err := NewFingerprint(ref.spec, "", n, size, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Run 1: a single worker, coordinator canceled the moment the first
	// shard completes. The cancel happens synchronously inside
	// OnShardDone, before the lone worker can pull another job, so
	// exactly one shard lands in the checkpoint.
	cp1, err := OpenCheckpoint(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Run(ctx, ref.spec, ref.scenarios, Options{
		Workers:     startWorkers(t, &fakeWorker{t: t}),
		ShardSize:   size,
		Checkpoint:  cp1,
		Backoff:     time.Millisecond,
		OnShardDone: func(string, ShardDone) { cancel() },
	})
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	if got := cp1.CompletedCount(); got != 1 || !cp1.Has(0) {
		t.Fatalf("after kill: %d shards checkpointed (has0=%v), want exactly shard 0", got, cp1.Has(0))
	}

	// Run 2: resume with a fresh fleet. Shard 0 must replay from the
	// spool — the workers' execution counters must only ever see the
	// remaining shards.
	cp2, err := OpenCheckpoint(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if !cp2.Resumed() {
		t.Fatal("second open did not resume")
	}
	w1, w2 := &fakeWorker{t: t}, &fakeWorker{t: t}
	records, agg, err := collectRun(t, Options{
		Workers:    startWorkers(t, w1, w2),
		ShardSize:  size,
		Checkpoint: cp2,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if records != refNDJSON(t) {
		t.Fatal("resumed records differ from single-process output")
	}
	if mustJSON(t, agg) != mustJSON(t, ref.agg) {
		t.Fatal("resumed aggregate differs from single-process output")
	}
	executed := append(w1.served(), w2.served()...)
	if len(executed) != len(shards)-1 {
		t.Fatalf("resume executed %d shards, want %d (total %d minus 1 checkpointed)",
			len(executed), len(shards)-1, len(shards))
	}
	for _, start := range executed {
		if start == 0 {
			t.Fatal("resume re-executed the checkpointed shard")
		}
	}
}

// TestCheckpointRunWritesEveryShard: a clean distributed run with a
// checkpoint leaves every shard spooled, so a later -resume is a pure
// replay.
func TestCheckpointRunWritesEveryShard(t *testing.T) {
	refSweep(t)
	n := len(ref.scenarios)
	size := (n + 2) / 3
	fp, err := NewFingerprint(ref.spec, "", n, size, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := OpenCheckpoint(t.TempDir(), fp)
	if err != nil {
		t.Fatal(err)
	}
	records, _, err := collectRun(t, Options{
		Workers:    startWorkers(t, &fakeWorker{t: t}),
		ShardSize:  size,
		Checkpoint: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	if records != refNDJSON(t) {
		t.Fatal("records differ")
	}
	if got, want := cp.CompletedCount(), len(Partition(n, size)); got != want {
		t.Fatalf("%d shards checkpointed, want %d", got, want)
	}
	// The spool is valid NDJSON per shard.
	recs, err := cp.ReadShard(0)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for _, imp := range recs {
		line, _ := json.Marshal(imp)
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	if string(buf) != refNDJSON(t)[:len(buf)] {
		t.Fatal("shard 0 spool is not a prefix of the reference stream")
	}
}
