package dsweep

import (
	"fmt"
	"sync"

	"github.com/policyscope/policyscope/internal/sweep"
)

// merger re-serializes complete shards into strict shard-index order
// before their records reach the aggregator and the caller's sink. It
// is the distributed analogue of the executor's emitter, at shard
// granularity: deliver is called with a whole shard's records at once
// (a shard is only delivered after its trailer validated), so within a
// shard the records are already ordered and between shards ordering by
// shard index restores the global scenario order.
//
// deliver is also the exactly-once guard: the first complete delivery
// of a shard wins and any later duplicate — a slow first attempt
// finishing after its retry already merged — is discarded whole.
type merger struct {
	mu sync.Mutex
	// next is the lowest shard index not yet released downstream.
	next int
	// pending holds delivered-but-not-yet-released shards.
	pending map[int][]*sweep.Impact
	// delivered marks shard indices that already merged (exactly-once).
	delivered map[int]bool
	agg       *sweep.Aggregator
	sink      func(*sweep.Impact) error
	sinkErr   error
	// fail aborts the run (used when the sink errors — e.g. the
	// coordinator's output file went away).
	fail func(error)
}

func newMerger(topK int, sink func(*sweep.Impact) error, fail func(error)) *merger {
	return &merger{
		pending:   make(map[int][]*sweep.Impact),
		delivered: make(map[int]bool),
		agg:       sweep.NewAggregator(topK),
		sink:      sink,
		fail:      fail,
	}
}

// deliver hands a complete shard's records to the merger. It returns
// true when the shard was a duplicate (already merged) and was
// discarded. Safe for concurrent use.
func (m *merger) deliver(shard int, recs []*sweep.Impact) (dup bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.delivered[shard] {
		mShardDuplicates.Inc()
		return true
	}
	m.delivered[shard] = true
	m.pending[shard] = recs
	for {
		ready, ok := m.pending[m.next]
		if !ok {
			return false
		}
		delete(m.pending, m.next)
		m.next++
		for _, imp := range ready {
			m.agg.Add(imp)
			if m.sink != nil && m.sinkErr == nil {
				if err := m.sink(imp); err != nil {
					m.sinkErr = err
					if m.fail != nil {
						m.fail(fmt.Errorf("dsweep: emitting record: %w", err))
					}
				}
			}
		}
	}
}

// mergedShards reports how many shards have been released downstream.
func (m *merger) mergedShards() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next
}
