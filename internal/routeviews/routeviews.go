// Package routeviews models an Oregon-RouteViews-style collector: a
// pseudo-AS that peers with a set of real ASes, each of which announces
// its default-free best routes to it. The collector's view — per prefix,
// each peer's best route — is exactly what the paper's Section 3 data
// source provides, and snapshots serialize to MRT TABLE_DUMP_V2 like the
// real archive.
package routeviews

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/mrt"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

// CollectorASN is the pseudo-ASN owning collector snapshots (Oregon's
// RouteViews used AS6447; the paper's Table 1 lists the view under
// AS6664).
const CollectorASN bgp.ASN = 6447

// SelectPeers picks a RouteViews-like peer set: every Tier-1 AS (the
// paper: "those ASs include nearly all Tier-1 ASs"), then the
// largest-degree Tier-2 ASes until n peers are selected.
func SelectPeers(topo *topogen.Topology, n int) []bgp.ASN {
	peers := append([]bgp.ASN(nil), topo.ASesByTier(1)...)
	t2 := append([]bgp.ASN(nil), topo.ASesByTier(2)...)
	sort.Slice(t2, func(i, j int) bool {
		di, dj := topo.Graph.Degree(t2[i]), topo.Graph.Degree(t2[j])
		if di != dj {
			return di > dj
		}
		return t2[i] < t2[j]
	})
	for _, asn := range t2 {
		if len(peers) >= n {
			break
		}
		peers = append(peers, asn)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	if len(peers) > n {
		peers = peers[:n]
	}
	return peers
}

// Snapshot is one collector table: each peer's best routes at an epoch.
type Snapshot struct {
	// Timestamp is the synthetic collection time (epoch index-based).
	Timestamp uint32
	// Peers is the collector's peer set, ascending.
	Peers []bgp.ASN
	// Table holds, per prefix, one candidate per peer (that peer's best
	// route). The RIB owner is CollectorASN.
	Table *bgp.RIB
}

// Collect builds a snapshot from a simulation result. Every peer must be
// among the run's vantage points.
func Collect(res *simulate.Result, peers []bgp.ASN, timestamp uint32) (*Snapshot, error) {
	snap := &Snapshot{
		Timestamp: timestamp,
		Peers:     append([]bgp.ASN(nil), peers...),
		Table:     bgp.NewRIB(CollectorASN),
	}
	sort.Slice(snap.Peers, func(i, j int) bool { return snap.Peers[i] < snap.Peers[j] })
	for _, peer := range snap.Peers {
		rib, ok := res.Tables[peer]
		if !ok {
			return nil, fmt.Errorf("routeviews: peer %v was not a vantage point", peer)
		}
		rib.EachBest(func(_ netx.Prefix, r *bgp.Route) {
			snap.Table.Upsert(peer, r)
		})
	}
	return snap, nil
}

// RouteFrom returns the best route peer announced for prefix, or nil.
func (s *Snapshot) RouteFrom(peer bgp.ASN, prefix netx.Prefix) *bgp.Route {
	return s.Table.CandidateFrom(prefix, peer)
}

// Prefixes lists every prefix any peer announced, in Compare order.
func (s *Snapshot) Prefixes() []netx.Prefix { return s.Table.Prefixes() }

// AllPaths returns every AS path in the snapshot (the relationship
// inference input). Paths are deduplicated.
func (s *Snapshot) AllPaths() []bgp.Path {
	seen := make(map[string]bool)
	var out []bgp.Path
	for _, prefix := range s.Table.Prefixes() {
		for _, r := range s.Table.Candidates(prefix) {
			if len(r.Path) < 2 {
				continue
			}
			k := r.Path.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, r.Path)
			}
		}
	}
	return out
}

// WriteMRT serializes the snapshot as TABLE_DUMP_V2: one PEER_INDEX_TABLE
// followed by one RIB_IPV4_UNICAST record per prefix.
func (s *Snapshot) WriteMRT(w io.Writer) error {
	mw := mrt.NewWriter(w, s.Timestamp)
	peers := make([]mrt.PeerEntry, len(s.Peers))
	for i, asn := range s.Peers {
		peers[i] = mrt.PeerEntry{
			BGPID: uint32(asn),
			IP:    peerIP(asn),
			AS:    asn,
			AS4:   true,
		}
	}
	if err := mw.WritePeerIndex(uint32(CollectorASN), "policyscope", peers); err != nil {
		return err
	}
	for _, prefix := range s.Table.Prefixes() {
		var entries []mrt.TableEntry
		for _, peer := range s.Peers {
			r := s.Table.CandidateFrom(prefix, peer)
			if r == nil {
				continue
			}
			entries = append(entries, mrt.TableEntry{
				PeerAS:       peer,
				PeerIP:       peerIP(peer),
				Route:        r,
				OriginatedAt: s.Timestamp,
			})
		}
		if len(entries) == 0 {
			continue
		}
		if err := mw.WriteRIB(prefix, entries); err != nil {
			return err
		}
	}
	return nil
}

// ReadMRT reconstructs a snapshot from TABLE_DUMP_V2 output.
func ReadMRT(r io.Reader) (*Snapshot, error) {
	records, err := mrt.ReadAll(r)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{Table: bgp.NewRIB(CollectorASN)}
	for _, rec := range records {
		switch rec := rec.(type) {
		case *mrt.PeerIndexRecord:
			snap.Timestamp = rec.Header.Timestamp
			for _, p := range rec.Peers {
				snap.Peers = append(snap.Peers, p.AS)
			}
			sort.Slice(snap.Peers, func(i, j int) bool { return snap.Peers[i] < snap.Peers[j] })
		case *mrt.RIBRecord:
			for _, e := range rec.Entries {
				snap.Table.Upsert(e.PeerAS, e.Route)
			}
		}
	}
	return snap, nil
}

func peerIP(asn bgp.ASN) uint32 {
	return 0xC6336400 | (uint32(asn) & 0xff) // 198.51.100.x, TEST-NET-2
}

// Series is a sequence of snapshots over policy-churn epochs — the
// substrate of the paper's Figures 6 and 7.
type Series struct {
	// Snapshots, one per epoch, in time order.
	Snapshots []*Snapshot
}

// SeriesOptions configures CollectSeries.
type SeriesOptions struct {
	// Epochs is the number of snapshots (31 for the March-2002 daily
	// view, 12–24 for the hourly view).
	Epochs int
	// ChurnFraction is the per-epoch fraction of multihomed origins that
	// re-roll an export policy.
	ChurnFraction float64
	// Seed drives the churn.
	Seed int64
	// EpochSeconds spaces snapshot timestamps.
	EpochSeconds uint32
	// BaseTimestamp is the first snapshot's timestamp.
	BaseTimestamp uint32
	// Simulate carries the propagation options; VantagePoints must
	// include every collector peer.
	Simulate simulate.Options
	// Peers is the collector peer set.
	Peers []bgp.ASN
}

// CollectSeries simulates the topology, then alternates policy churn and
// incremental re-simulation, snapshotting the collector at every epoch.
// The topology's policies are mutated in place; callers wanting to keep
// the original should pass topo.Clone().
func CollectSeries(topo *topogen.Topology, opts SeriesOptions) (*Series, error) {
	if opts.Epochs <= 0 {
		return nil, fmt.Errorf("routeviews: Epochs must be positive")
	}
	if opts.EpochSeconds == 0 {
		opts.EpochSeconds = 86400
	}
	res, err := simulate.Run(topo, opts.Simulate)
	if err != nil {
		return nil, err
	}
	series := &Series{}
	snap, err := Collect(res, opts.Peers, opts.BaseTimestamp)
	if err != nil {
		return nil, err
	}
	series.Snapshots = append(series.Snapshots, snap)
	for epoch := 1; epoch < opts.Epochs; epoch++ {
		rng := rand.New(rand.NewSource(opts.Seed + int64(epoch)))
		touched := topo.MutateExportPolicies(rng, opts.ChurnFraction)
		res, err = simulate.RunSubset(topo, opts.Simulate, res, touched)
		if err != nil {
			return nil, err
		}
		snap, err := Collect(res, opts.Peers, opts.BaseTimestamp+uint32(epoch)*opts.EpochSeconds)
		if err != nil {
			return nil, err
		}
		series.Snapshots = append(series.Snapshots, snap)
	}
	return series, nil
}
