package routeviews

import (
	"bytes"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

func fixture(t *testing.T) (*topogen.Topology, []bgp.ASN, *simulate.Result) {
	t.Helper()
	topo, err := topogen.Generate(topogen.DefaultConfig(150, 61))
	if err != nil {
		t.Fatal(err)
	}
	peers := SelectPeers(topo, 12)
	res, err := simulate.Run(topo, simulate.Options{VantagePoints: peers})
	if err != nil {
		t.Fatal(err)
	}
	return topo, peers, res
}

func TestSelectPeers(t *testing.T) {
	topo, peers, _ := fixture(t)
	if len(peers) != 12 {
		t.Fatalf("peers = %d", len(peers))
	}
	t1 := map[bgp.ASN]bool{}
	for _, asn := range topo.ASesByTier(1) {
		t1[asn] = true
	}
	// All tier-1s included (the paper: "nearly all Tier-1 ASs").
	covered := 0
	for _, p := range peers {
		if t1[p] {
			covered++
		}
	}
	if covered != len(t1) {
		t.Fatalf("tier-1 coverage %d of %d", covered, len(t1))
	}
	// Remaining slots go to the largest tier-2s.
	for _, p := range peers {
		if !t1[p] && topo.TierOf(p) != 2 {
			t.Fatalf("non-T1/T2 peer %v (tier %d)", p, topo.TierOf(p))
		}
	}
	// Requesting fewer than the T1 count truncates deterministically.
	small := SelectPeers(topo, 3)
	if len(small) != 3 {
		t.Fatalf("small peers = %d", len(small))
	}
}

func TestCollectSnapshot(t *testing.T) {
	topo, peers, res := fixture(t)
	snap, err := Collect(res, peers, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Timestamp != 1000 || len(snap.Peers) != len(peers) {
		t.Fatalf("snapshot meta: %+v", snap)
	}
	if len(snap.Prefixes()) == 0 {
		t.Fatal("empty snapshot")
	}
	// Each stored route equals the peer's best.
	checked := 0
	for _, peer := range peers {
		rib := res.Tables[peer]
		for _, prefix := range rib.Prefixes() {
			want := rib.Best(prefix)
			got := snap.RouteFrom(peer, prefix)
			if got == nil || !got.Path.Equal(want.Path) {
				t.Fatalf("route mismatch at %v/%v", peer, prefix)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing compared")
	}
	_ = topo
	// Unknown peer errors.
	if _, err := Collect(res, []bgp.ASN{65000}, 0); err == nil {
		t.Fatal("unknown peer must fail")
	}
}

func TestAllPathsDeduplicated(t *testing.T) {
	_, peers, res := fixture(t)
	snap, err := Collect(res, peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	paths := snap.AllPaths()
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	seen := map[string]bool{}
	for _, p := range paths {
		k := p.String()
		if seen[k] {
			t.Fatalf("duplicate path %q", k)
		}
		seen[k] = true
		if len(p) < 2 {
			t.Fatalf("short path %v", p)
		}
	}
}

func TestMRTRoundTrip(t *testing.T) {
	_, peers, res := fixture(t)
	snap, err := Collect(res, peers, 12345)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.WriteMRT(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Timestamp != 12345 || len(back.Peers) != len(snap.Peers) {
		t.Fatalf("meta: %+v", back)
	}
	wantPrefixes := snap.Prefixes()
	gotPrefixes := back.Prefixes()
	if len(wantPrefixes) != len(gotPrefixes) {
		t.Fatalf("prefixes: %d -> %d", len(wantPrefixes), len(gotPrefixes))
	}
	for _, prefix := range wantPrefixes {
		for _, peer := range snap.Peers {
			want := snap.RouteFrom(peer, prefix)
			got := back.RouteFrom(peer, prefix)
			if (want == nil) != (got == nil) {
				t.Fatalf("presence mismatch %v/%v", peer, prefix)
			}
			if want == nil {
				continue
			}
			if !want.Path.Equal(got.Path) || want.LocalPref != got.LocalPref {
				t.Fatalf("route mismatch %v/%v: %v vs %v", peer, prefix, want, got)
			}
			if len(want.Communities) != len(got.Communities) {
				t.Fatalf("communities lost at %v/%v", peer, prefix)
			}
		}
	}
}

func TestCollectSeries(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(120, 62))
	if err != nil {
		t.Fatal(err)
	}
	peers := SelectPeers(topo, 8)
	series, err := CollectSeries(topo, SeriesOptions{
		Epochs:        4,
		ChurnFraction: 0.3,
		Seed:          5,
		EpochSeconds:  3600,
		Simulate:      simulate.Options{VantagePoints: peers},
		Peers:         peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Snapshots) != 4 {
		t.Fatalf("snapshots = %d", len(series.Snapshots))
	}
	for i := 1; i < 4; i++ {
		if series.Snapshots[i].Timestamp != series.Snapshots[0].Timestamp+uint32(i)*3600 {
			t.Fatalf("timestamps not spaced: %d", series.Snapshots[i].Timestamp)
		}
	}
	// Churn must change at least one route across the series.
	changed := false
	first, last := series.Snapshots[0], series.Snapshots[3]
	for _, prefix := range first.Prefixes() {
		for _, peer := range first.Peers {
			a, b := first.RouteFrom(peer, prefix), last.RouteFrom(peer, prefix)
			if (a == nil) != (b == nil) {
				changed = true
			} else if a != nil && !a.Path.Equal(b.Path) {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("no route changed across churn epochs")
	}
	if _, err := CollectSeries(topo, SeriesOptions{Epochs: 0}); err == nil {
		t.Fatal("zero epochs must fail")
	}
}

func TestSeriesEpochSubsetConsistency(t *testing.T) {
	// A series epoch must equal a from-scratch run with the same mutated
	// policies: catches stale-table bugs in the RunSubset adoption path.
	topo, err := topogen.Generate(topogen.DefaultConfig(100, 63))
	if err != nil {
		t.Fatal(err)
	}
	peers := SelectPeers(topo, 6)
	opts := SeriesOptions{
		Epochs:        3,
		ChurnFraction: 0.4,
		Seed:          17,
		Simulate:      simulate.Options{VantagePoints: peers},
		Peers:         peers,
	}
	series, err := CollectSeries(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	// topo now carries the final epoch's policies; a fresh full run must
	// match the last snapshot.
	res, err := simulate.Run(topo, opts.Simulate)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Collect(res, peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := series.Snapshots[len(series.Snapshots)-1]
	lastPrefixes := last.Prefixes()
	freshPrefixes := fresh.Prefixes()
	if len(lastPrefixes) != len(freshPrefixes) {
		t.Fatalf("prefix counts: %d vs %d", len(lastPrefixes), len(freshPrefixes))
	}
	for _, prefix := range lastPrefixes {
		for _, peer := range peers {
			a, b := last.RouteFrom(peer, prefix), fresh.RouteFrom(peer, prefix)
			if (a == nil) != (b == nil) {
				t.Fatalf("presence diverges at %v/%v", peer, prefix)
			}
			if a != nil && !a.Path.Equal(b.Path) {
				t.Fatalf("incremental epoch diverges at %v/%v: %v vs %v", peer, prefix, a.Path, b.Path)
			}
		}
	}
}
