package mrt

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

func sampleRoute() *bgp.Route {
	path, _ := bgp.ParsePath("701 1239 7018")
	return &bgp.Route{
		Prefix:      netx.MustParsePrefix("12.10.0.0/19"),
		Path:        path,
		NextHop:     0x0a010101,
		LocalPref:   120,
		MED:         30,
		Origin:      bgp.OriginIGP,
		Communities: bgp.NewCommunities(bgp.MakeCommunity(12859, 1000), bgp.NoExport),
	}
}

func TestTableDumpRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1037000000)
	entry := TableEntry{PeerAS: 701, PeerIP: 0xC0A80001, Route: sampleRoute(), OriginatedAt: 42}
	if err := w.WriteTableDump(entry); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	td, ok := recs[0].(*TableDumpRecord)
	if !ok {
		t.Fatalf("record type %T", recs[0])
	}
	got := td.Entry
	if got.PeerAS != 701 || got.PeerIP != 0xC0A80001 || got.OriginatedAt != 42 {
		t.Fatalf("entry metadata: %+v", got)
	}
	want := sampleRoute()
	if got.Route.Prefix != want.Prefix || !got.Route.Path.Equal(want.Path) {
		t.Fatalf("route: %v", got.Route)
	}
	if got.Route.LocalPref != 120 || got.Route.MED != 30 || got.Route.Origin != bgp.OriginIGP {
		t.Fatalf("attrs: %v", got.Route)
	}
	if len(got.Route.Communities) != 2 || !got.Route.Communities.Has(bgp.NoExport) {
		t.Fatalf("communities: %v", got.Route.Communities)
	}
	if td.Header.Timestamp != 1037000000 {
		t.Fatalf("timestamp: %d", td.Header.Timestamp)
	}
}

func TestTableDumpV2RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 99)
	peers := []PeerEntry{
		{BGPID: 1, IP: 0x01010101, AS: 701, AS4: false},
		{BGPID: 2, IP: 0x02020202, AS: 75000, AS4: true}, // 4-byte ASN peer
	}
	if err := w.WritePeerIndex(0x0A0A0A0A, "policyscope-view", peers); err != nil {
		t.Fatal(err)
	}
	r1 := sampleRoute()
	r2 := sampleRoute()
	r2.Path, _ = bgp.ParsePath("75000 3356 7018")
	r2.LocalPref = 80
	r2.MED = 0 // omitted attribute path
	r2.Communities = nil
	entries := []TableEntry{
		{PeerAS: 701, PeerIP: 0x01010101, Route: r1, OriginatedAt: 7},
		{PeerAS: 75000, PeerIP: 0x02020202, Route: r2, OriginatedAt: 8},
	}
	if err := w.WriteRIB(r1.Prefix, entries); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	pi, ok := recs[0].(*PeerIndexRecord)
	if !ok || pi.ViewName != "policyscope-view" || pi.CollectorID != 0x0A0A0A0A {
		t.Fatalf("peer index: %+v", recs[0])
	}
	if len(pi.Peers) != 2 || pi.Peers[1].AS != 75000 || !pi.Peers[1].AS4 {
		t.Fatalf("peers: %+v", pi.Peers)
	}
	rib, ok := recs[1].(*RIBRecord)
	if !ok {
		t.Fatalf("record type %T", recs[1])
	}
	if rib.Prefix != r1.Prefix || len(rib.Entries) != 2 {
		t.Fatalf("rib: %+v", rib)
	}
	if !rib.Entries[0].Route.Path.Equal(r1.Path) {
		t.Fatalf("entry 0 path %v", rib.Entries[0].Route.Path)
	}
	if !rib.Entries[1].Route.Path.Equal(r2.Path) {
		t.Fatalf("entry 1 path %v (4-byte ASN must survive)", rib.Entries[1].Route.Path)
	}
	if rib.Entries[1].Route.MED != 0 || rib.Entries[1].Route.Communities != nil {
		t.Fatalf("omitted attrs decoded wrong: %+v", rib.Entries[1].Route)
	}
}

func TestTableDumpTruncatesASNTo16Bits(t *testing.T) {
	// v1 faithfully truncates 4-byte ASNs; this is a format property.
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	r := sampleRoute()
	r.Path = bgp.Path{75000}
	if err := w.WriteTableDump(TableEntry{PeerAS: 1, Route: r}); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := recs[0].(*TableDumpRecord).Entry.Route.Path[0]
	if got != bgp.ASN(75000&0xffff) {
		t.Fatalf("v1 ASN = %v, want 16-bit truncation", got)
	}
}

func TestRIBBeforePeerIndexFails(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteRIB(netx.MustParsePrefix("10.0.0.0/8"), nil); err == nil {
		t.Fatal("WriteRIB without index must fail")
	}
	// Reader side: hand-craft a RIB record with no preceding index.
	var buf2 bytes.Buffer
	w2 := NewWriter(&buf2, 0)
	if err := w2.WritePeerIndex(1, "v", []PeerEntry{{AS: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteRIB(netx.MustParsePrefix("10.0.0.0/8"),
		[]TableEntry{{PeerAS: 1, Route: &bgp.Route{Prefix: netx.MustParsePrefix("10.0.0.0/8")}}}); err != nil {
		t.Fatal(err)
	}
	full := buf2.Bytes()
	// Skip the first record (peer index) and feed only the RIB record.
	h, err := readHeader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	ribOnly := full[headerLen+int(h.Length):]
	if _, err := ReadAll(bytes.NewReader(ribOnly)); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("RIB without index = %v, want ErrBadRecord", err)
	}
}

func TestUnknownPeerInRIB(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WritePeerIndex(1, "v", []PeerEntry{{AS: 1}}); err != nil {
		t.Fatal(err)
	}
	err := w.WriteRIB(netx.MustParsePrefix("10.0.0.0/8"),
		[]TableEntry{{PeerAS: 99, Route: &bgp.Route{Prefix: netx.MustParsePrefix("10.0.0.0/8")}}})
	if err == nil {
		t.Fatal("unknown peer must fail")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteTableDump(TableEntry{PeerAS: 1, Route: sampleRoute()}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut mid-header and mid-body.
	for _, cut := range []int{3, headerLen + 4} {
		_, err := ReadAll(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want ErrTruncated", cut, err)
		}
	}
	// Empty stream: clean EOF.
	recs, err := ReadAll(bytes.NewReader(nil))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty stream: %v, %v", recs, err)
	}
}

func TestUnsupportedType(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHeader(&buf, Header{Type: 16, Subtype: 1, Length: 0}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadAll(&buf)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestAbsurdLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHeader(&buf, Header{Type: TypeTableDump, Subtype: 1, Length: maxRecordLen + 1}); err != nil {
		t.Fatal(err)
	}
	_, err := ReadAll(&buf)
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", err)
	}
}

func TestBadAttributeValues(t *testing.T) {
	mk := func(mutate func([]byte) []byte) error {
		var buf bytes.Buffer
		w := NewWriter(&buf, 0)
		if err := w.WriteTableDump(TableEntry{PeerAS: 1, Route: sampleRoute()}); err != nil {
			return err
		}
		raw := mutate(buf.Bytes())
		_, err := ReadAll(bytes.NewReader(raw))
		return err
	}
	// Corrupt the ORIGIN value (first attribute body byte after the
	// fixed 22-byte prefix header region + attr header).
	err := mk(func(b []byte) []byte {
		b[headerLen+22+3] = 9 // ORIGIN value byte
		return b
	})
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad origin: %v", err)
	}
	// Corrupt the prefix length field.
	err = mk(func(b []byte) []byte {
		b[headerLen+8] = 60
		return b
	})
	if !errors.Is(err, ErrBadRecord) {
		t.Fatalf("bad prefix len: %v", err)
	}
}

// TestPropertyV2RoundTrip fuzzes random routes through the v2 format.
func TestPropertyV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		prefLen := uint8(8 + rng.Intn(17))
		prefix := netx.Prefix{Addr: rng.Uint32() & netx.Mask(prefLen), Len: prefLen}
		n := 1 + rng.Intn(4)
		peers := make([]PeerEntry, n)
		entries := make([]TableEntry, n)
		for i := range peers {
			asn := bgp.ASN(1 + rng.Intn(64000))
			peers[i] = PeerEntry{BGPID: uint32(i + 1), IP: rng.Uint32(), AS: asn, AS4: rng.Intn(2) == 0}
			pl := 1 + rng.Intn(5)
			path := make(bgp.Path, pl)
			path[0] = asn
			for j := 1; j < pl; j++ {
				path[j] = bgp.ASN(1 + rng.Intn(64000))
			}
			var comms []bgp.Community
			for j := 0; j < rng.Intn(3); j++ {
				comms = append(comms, bgp.MakeCommunity(bgp.ASN(rng.Intn(65000)), uint16(rng.Intn(65000))))
			}
			entries[i] = TableEntry{
				PeerAS: asn,
				PeerIP: peers[i].IP,
				Route: &bgp.Route{
					Prefix:      prefix,
					Path:        path,
					NextHop:     rng.Uint32(),
					LocalPref:   uint32(rng.Intn(200)),
					MED:         uint32(rng.Intn(2) * (1 + rng.Intn(100))),
					Origin:      bgp.Origin(rng.Intn(3)),
					Communities: bgp.NewCommunities(comms...),
				},
				OriginatedAt: rng.Uint32(),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, 1)
		if err := w.WritePeerIndex(7, "fuzz", peers); err != nil {
			return false
		}
		if err := w.WriteRIB(prefix, entries); err != nil {
			return false
		}
		recs, err := ReadAll(&buf)
		if err != nil || len(recs) != 2 {
			return false
		}
		rib := recs[1].(*RIBRecord)
		if rib.Prefix != prefix || len(rib.Entries) != n {
			return false
		}
		for i, e := range rib.Entries {
			want := entries[i]
			if e.PeerAS != want.PeerAS || !e.Route.Path.Equal(want.Route.Path) {
				return false
			}
			if e.Route.LocalPref != want.Route.LocalPref || e.Route.MED != want.Route.MED {
				return false
			}
			if e.Route.Origin != want.Route.Origin || e.Route.NextHop != want.Route.NextHop {
				return false
			}
			if len(e.Route.Communities) != len(want.Route.Communities) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleRIBRecordsSequence(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 5)
	if err := w.WritePeerIndex(1, "v", []PeerEntry{{AS: 10}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p := netx.Prefix{Addr: uint32(i) << 24, Len: 8}
		e := TableEntry{PeerAS: 10, Route: &bgp.Route{Prefix: p, Path: bgp.Path{10}}}
		if err := w.WriteRIB(p, []TableEntry{e}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadAll(&buf)
	if err != nil || len(recs) != 4 {
		t.Fatalf("records = %d, err = %v", len(recs), err)
	}
	for i := 1; i < 4; i++ {
		rib := recs[i].(*RIBRecord)
		if rib.Sequence != uint32(i-1) {
			t.Fatalf("sequence[%d] = %d", i, rib.Sequence)
		}
	}
}

func TestReaderIsStreaming(t *testing.T) {
	// Records decode one at a time from a non-seekable reader.
	var buf bytes.Buffer
	w := NewWriter(&buf, 0)
	if err := w.WriteTableDump(TableEntry{PeerAS: 1, Route: sampleRoute()}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteTableDump(TableEntry{PeerAS: 2, Route: sampleRoute()}); err != nil {
		t.Fatal(err)
	}
	rd := NewReader(io.MultiReader(bytes.NewReader(buf.Bytes())))
	first, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if first.(*TableDumpRecord).Entry.PeerAS != 1 {
		t.Fatal("first record wrong")
	}
	second, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if second.(*TableDumpRecord).Entry.PeerAS != 2 {
		t.Fatal("second record wrong")
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}
