// Package mrt implements the subset of the MRT export format (RFC 6396)
// that BGP table snapshots use: TABLE_DUMP (type 12, the format Oregon
// RouteViews used in the paper's 2002 era) and TABLE_DUMP_V2 (type 13,
// PEER_INDEX_TABLE + RIB_IPV4_UNICAST). Only IPv4 unicast is supported,
// matching the paper's data.
//
// The package converts between on-disk records and the bgp.Route model
// used by the rest of policyscope.
package mrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MRT record types and subtypes (RFC 6396 §4).
const (
	TypeTableDump   uint16 = 12
	TypeTableDumpV2 uint16 = 13

	SubtypeAFIIPv4 uint16 = 1 // TABLE_DUMP

	SubtypePeerIndexTable uint16 = 1 // TABLE_DUMP_V2
	SubtypeRIBIPv4Unicast uint16 = 2
)

// BGP path attribute type codes (RFC 4271 §5).
const (
	attrOrigin    = 1
	attrASPath    = 2
	attrNextHop   = 3
	attrMED       = 4
	attrLocalPref = 5
	attrCommunity = 8
)

// Attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// Errors returned by the reader.
var (
	// ErrTruncated indicates a record shorter than its header claims.
	ErrTruncated = errors.New("mrt: truncated record")
	// ErrBadRecord wraps structural decoding failures.
	ErrBadRecord = errors.New("mrt: malformed record")
	// ErrUnsupported marks record types this subset does not handle.
	ErrUnsupported = errors.New("mrt: unsupported record type")
)

// Header is the common MRT record header.
type Header struct {
	Timestamp uint32
	Type      uint16
	Subtype   uint16
	Length    uint32
}

const headerLen = 12

// maxRecordLen guards against absurd length fields in corrupt input.
const maxRecordLen = 16 << 20

func writeHeader(w io.Writer, h Header) error {
	var buf [headerLen]byte
	binary.BigEndian.PutUint32(buf[0:], h.Timestamp)
	binary.BigEndian.PutUint16(buf[4:], h.Type)
	binary.BigEndian.PutUint16(buf[6:], h.Subtype)
	binary.BigEndian.PutUint32(buf[8:], h.Length)
	_, err := w.Write(buf[:])
	return err
}

func readHeader(r io.Reader) (Header, error) {
	var buf [headerLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Header{}, fmt.Errorf("%w: partial header", ErrTruncated)
		}
		return Header{}, err // io.EOF at a record boundary is clean EOF
	}
	h := Header{
		Timestamp: binary.BigEndian.Uint32(buf[0:]),
		Type:      binary.BigEndian.Uint16(buf[4:]),
		Subtype:   binary.BigEndian.Uint16(buf[6:]),
		Length:    binary.BigEndian.Uint32(buf[8:]),
	}
	if h.Length > maxRecordLen {
		return Header{}, fmt.Errorf("%w: record length %d exceeds limit", ErrBadRecord, h.Length)
	}
	return h, nil
}

// byteCursor walks a record body with bounds checking.
type byteCursor struct {
	b   []byte
	off int
}

func (c *byteCursor) remain() int { return len(c.b) - c.off }

func (c *byteCursor) take(n int) ([]byte, error) {
	if c.remain() < n {
		return nil, fmt.Errorf("%w: want %d bytes, have %d", ErrTruncated, n, c.remain())
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, nil
}

func (c *byteCursor) u8() (uint8, error) {
	b, err := c.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (c *byteCursor) u16() (uint16, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (c *byteCursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}
