package mrt

import (
	"encoding/binary"
	"fmt"
	"io"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// TableEntry is one (peer, route) observation in a table snapshot: the
// best route some collector peer announced for a prefix.
type TableEntry struct {
	// PeerAS is the collector peer that contributed the route.
	PeerAS bgp.ASN
	// PeerIP is the peer's session address.
	PeerIP uint32
	// Route is the decoded route (prefix + attributes).
	Route *bgp.Route
	// OriginatedAt is the route's age timestamp.
	OriginatedAt uint32
}

// Record is any decoded MRT record.
type Record interface{ mrtRecord() }

// TableDumpRecord is one TABLE_DUMP (v1) entry: a single route.
type TableDumpRecord struct {
	Header   Header
	ViewNum  uint16
	Sequence uint16
	Status   uint8
	Entry    TableEntry
}

func (*TableDumpRecord) mrtRecord() {}

// PeerIndexRecord is a TABLE_DUMP_V2 PEER_INDEX_TABLE.
type PeerIndexRecord struct {
	Header      Header
	CollectorID uint32
	ViewName    string
	Peers       []PeerEntry
}

func (*PeerIndexRecord) mrtRecord() {}

// PeerEntry describes one collector peer in the index.
type PeerEntry struct {
	BGPID uint32
	IP    uint32
	AS    bgp.ASN
	AS4   bool // 4-byte ASN encoding for this peer
}

// RIBRecord is a TABLE_DUMP_V2 RIB_IPV4_UNICAST: all peers' routes for
// one prefix.
type RIBRecord struct {
	Header   Header
	Sequence uint32
	Prefix   netx.Prefix
	// PeerIndex[i] indexes into the preceding PeerIndexRecord's Peers.
	PeerIndex []uint16
	Entries   []TableEntry
}

func (*RIBRecord) mrtRecord() {}

// Writer emits MRT records. Create with NewWriter.
type Writer struct {
	w         io.Writer
	timestamp uint32
	peerIdx   map[bgp.ASN]uint16
	peers     []PeerEntry
	seqV1     uint16
	seqV2     uint32
}

// NewWriter wraps w. All records carry the given snapshot timestamp, as
// table dumps do.
func NewWriter(w io.Writer, timestamp uint32) *Writer {
	return &Writer{w: w, timestamp: timestamp}
}

// WriteTableDump emits one TABLE_DUMP (v1) record for the entry. AS
// numbers are truncated to 16 bits, faithfully to the v1 format.
func (wr *Writer) WriteTableDump(e TableEntry) error {
	attrs := encodeAttrs(e.Route, false)
	body := make([]byte, 0, 22+len(attrs))
	var scratch [4]byte

	binary.BigEndian.PutUint16(scratch[:2], 0) // view number
	body = append(body, scratch[:2]...)
	binary.BigEndian.PutUint16(scratch[:2], wr.seqV1)
	body = append(body, scratch[:2]...)
	wr.seqV1++

	binary.BigEndian.PutUint32(scratch[:], e.Route.Prefix.Addr)
	body = append(body, scratch[:4]...)
	body = append(body, e.Route.Prefix.Len, 1) // status = 1 (valid)

	binary.BigEndian.PutUint32(scratch[:], e.OriginatedAt)
	body = append(body, scratch[:4]...)
	binary.BigEndian.PutUint32(scratch[:], e.PeerIP)
	body = append(body, scratch[:4]...)
	binary.BigEndian.PutUint16(scratch[:2], uint16(e.PeerAS))
	body = append(body, scratch[:2]...)
	binary.BigEndian.PutUint16(scratch[:2], uint16(len(attrs)))
	body = append(body, scratch[:2]...)
	body = append(body, attrs...)

	if err := writeHeader(wr.w, Header{
		Timestamp: wr.timestamp, Type: TypeTableDump, Subtype: SubtypeAFIIPv4,
		Length: uint32(len(body)),
	}); err != nil {
		return err
	}
	_, err := wr.w.Write(body)
	return err
}

// WritePeerIndex emits the PEER_INDEX_TABLE and fixes the peer numbering
// used by subsequent WriteRIB calls.
func (wr *Writer) WritePeerIndex(collectorID uint32, viewName string, peers []PeerEntry) error {
	wr.peerIdx = make(map[bgp.ASN]uint16, len(peers))
	wr.peers = append([]PeerEntry(nil), peers...)
	for i, p := range peers {
		wr.peerIdx[p.AS] = uint16(i)
	}
	body := make([]byte, 0, 8+len(viewName)+len(peers)*13)
	var scratch [4]byte
	binary.BigEndian.PutUint32(scratch[:], collectorID)
	body = append(body, scratch[:4]...)
	binary.BigEndian.PutUint16(scratch[:2], uint16(len(viewName)))
	body = append(body, scratch[:2]...)
	body = append(body, viewName...)
	binary.BigEndian.PutUint16(scratch[:2], uint16(len(peers)))
	body = append(body, scratch[:2]...)
	for _, p := range peers {
		// Peer type: bit 0 = IPv6 (never set here), bit 1 = 4-byte AS.
		var ptype byte
		if p.AS4 {
			ptype |= 0x02
		}
		body = append(body, ptype)
		binary.BigEndian.PutUint32(scratch[:], p.BGPID)
		body = append(body, scratch[:4]...)
		binary.BigEndian.PutUint32(scratch[:], p.IP)
		body = append(body, scratch[:4]...)
		if p.AS4 {
			binary.BigEndian.PutUint32(scratch[:], uint32(p.AS))
			body = append(body, scratch[:4]...)
		} else {
			binary.BigEndian.PutUint16(scratch[:2], uint16(p.AS))
			body = append(body, scratch[:2]...)
		}
	}
	if err := writeHeader(wr.w, Header{
		Timestamp: wr.timestamp, Type: TypeTableDumpV2, Subtype: SubtypePeerIndexTable,
		Length: uint32(len(body)),
	}); err != nil {
		return err
	}
	_, err := wr.w.Write(body)
	return err
}

// WriteRIB emits one RIB_IPV4_UNICAST record with every peer's route for
// the prefix. WritePeerIndex must have been called with entries covering
// every PeerAS used here.
func (wr *Writer) WriteRIB(prefix netx.Prefix, entries []TableEntry) error {
	if wr.peerIdx == nil {
		return fmt.Errorf("%w: WriteRIB before WritePeerIndex", ErrBadRecord)
	}
	body := make([]byte, 0, 16)
	var scratch [4]byte
	binary.BigEndian.PutUint32(scratch[:], wr.seqV2)
	body = append(body, scratch[:4]...)
	wr.seqV2++
	body = append(body, prefix.Len)
	// Prefix bytes: only the significant octets (RFC 6396 §4.3.2).
	nBytes := (int(prefix.Len) + 7) / 8
	binary.BigEndian.PutUint32(scratch[:], prefix.Addr)
	body = append(body, scratch[:nBytes]...)
	binary.BigEndian.PutUint16(scratch[:2], uint16(len(entries)))
	body = append(body, scratch[:2]...)
	for _, e := range entries {
		idx, ok := wr.peerIdx[e.PeerAS]
		if !ok {
			return fmt.Errorf("%w: peer %v not in index", ErrBadRecord, e.PeerAS)
		}
		binary.BigEndian.PutUint16(scratch[:2], idx)
		body = append(body, scratch[:2]...)
		binary.BigEndian.PutUint32(scratch[:], e.OriginatedAt)
		body = append(body, scratch[:4]...)
		attrs := encodeAttrs(e.Route, true)
		binary.BigEndian.PutUint16(scratch[:2], uint16(len(attrs)))
		body = append(body, scratch[:2]...)
		body = append(body, attrs...)
	}
	if err := writeHeader(wr.w, Header{
		Timestamp: wr.timestamp, Type: TypeTableDumpV2, Subtype: SubtypeRIBIPv4Unicast,
		Length: uint32(len(body)),
	}); err != nil {
		return err
	}
	_, err := wr.w.Write(body)
	return err
}

// Reader decodes MRT records sequentially.
type Reader struct {
	r     io.Reader
	peers []PeerEntry // from the last PEER_INDEX_TABLE
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next record, or io.EOF at a clean end of stream.
func (rd *Reader) Next() (Record, error) {
	h, err := readHeader(rd.r)
	if err != nil {
		return nil, err
	}
	body := make([]byte, h.Length)
	if _, err := io.ReadFull(rd.r, body); err != nil {
		return nil, fmt.Errorf("%w: body shorter than header length", ErrTruncated)
	}
	switch {
	case h.Type == TypeTableDump && h.Subtype == SubtypeAFIIPv4:
		return decodeTableDump(h, body)
	case h.Type == TypeTableDumpV2 && h.Subtype == SubtypePeerIndexTable:
		rec, err := decodePeerIndex(h, body)
		if err != nil {
			return nil, err
		}
		rd.peers = rec.Peers
		return rec, nil
	case h.Type == TypeTableDumpV2 && h.Subtype == SubtypeRIBIPv4Unicast:
		return decodeRIB(h, body, rd.peers)
	default:
		return nil, fmt.Errorf("%w: type %d subtype %d", ErrUnsupported, h.Type, h.Subtype)
	}
}

func decodeTableDump(h Header, body []byte) (*TableDumpRecord, error) {
	c := byteCursor{b: body}
	rec := &TableDumpRecord{Header: h}
	var err error
	if rec.ViewNum, err = c.u16(); err != nil {
		return nil, err
	}
	if rec.Sequence, err = c.u16(); err != nil {
		return nil, err
	}
	addr, err := c.u32()
	if err != nil {
		return nil, err
	}
	plen, err := c.u8()
	if err != nil {
		return nil, err
	}
	if plen > 32 {
		return nil, fmt.Errorf("%w: prefix length %d", ErrBadRecord, plen)
	}
	if rec.Status, err = c.u8(); err != nil {
		return nil, err
	}
	if rec.Entry.OriginatedAt, err = c.u32(); err != nil {
		return nil, err
	}
	if rec.Entry.PeerIP, err = c.u32(); err != nil {
		return nil, err
	}
	peerAS, err := c.u16()
	if err != nil {
		return nil, err
	}
	rec.Entry.PeerAS = bgp.ASN(peerAS)
	attrLen, err := c.u16()
	if err != nil {
		return nil, err
	}
	attrs, err := c.take(int(attrLen))
	if err != nil {
		return nil, err
	}
	route := &bgp.Route{Prefix: netx.Prefix{Addr: addr, Len: plen}}
	if !route.Prefix.IsValid() {
		return nil, fmt.Errorf("%w: non-canonical prefix", ErrBadRecord)
	}
	if err := decodeAttrs(attrs, false, route); err != nil {
		return nil, err
	}
	rec.Entry.Route = route
	return rec, nil
}

func decodePeerIndex(h Header, body []byte) (*PeerIndexRecord, error) {
	c := byteCursor{b: body}
	rec := &PeerIndexRecord{Header: h}
	var err error
	if rec.CollectorID, err = c.u32(); err != nil {
		return nil, err
	}
	nameLen, err := c.u16()
	if err != nil {
		return nil, err
	}
	name, err := c.take(int(nameLen))
	if err != nil {
		return nil, err
	}
	rec.ViewName = string(name)
	count, err := c.u16()
	if err != nil {
		return nil, err
	}
	rec.Peers = make([]PeerEntry, 0, count)
	for i := 0; i < int(count); i++ {
		ptype, err := c.u8()
		if err != nil {
			return nil, err
		}
		if ptype&0x01 != 0 {
			return nil, fmt.Errorf("%w: IPv6 peer entries", ErrUnsupported)
		}
		var p PeerEntry
		p.AS4 = ptype&0x02 != 0
		if p.BGPID, err = c.u32(); err != nil {
			return nil, err
		}
		if p.IP, err = c.u32(); err != nil {
			return nil, err
		}
		if p.AS4 {
			asn, err := c.u32()
			if err != nil {
				return nil, err
			}
			p.AS = bgp.ASN(asn)
		} else {
			asn, err := c.u16()
			if err != nil {
				return nil, err
			}
			p.AS = bgp.ASN(asn)
		}
		rec.Peers = append(rec.Peers, p)
	}
	return rec, nil
}

func decodeRIB(h Header, body []byte, peers []PeerEntry) (*RIBRecord, error) {
	if peers == nil {
		return nil, fmt.Errorf("%w: RIB record before PEER_INDEX_TABLE", ErrBadRecord)
	}
	c := byteCursor{b: body}
	rec := &RIBRecord{Header: h}
	var err error
	if rec.Sequence, err = c.u32(); err != nil {
		return nil, err
	}
	plen, err := c.u8()
	if err != nil {
		return nil, err
	}
	if plen > 32 {
		return nil, fmt.Errorf("%w: prefix length %d", ErrBadRecord, plen)
	}
	nBytes := (int(plen) + 7) / 8
	pb, err := c.take(nBytes)
	if err != nil {
		return nil, err
	}
	var addr uint32
	for i, b := range pb {
		addr |= uint32(b) << (24 - 8*i)
	}
	rec.Prefix = netx.Prefix{Addr: addr, Len: plen}
	if !rec.Prefix.IsValid() {
		return nil, fmt.Errorf("%w: non-canonical prefix", ErrBadRecord)
	}
	count, err := c.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(count); i++ {
		idx, err := c.u16()
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(peers) {
			return nil, fmt.Errorf("%w: peer index %d out of range", ErrBadRecord, idx)
		}
		origAt, err := c.u32()
		if err != nil {
			return nil, err
		}
		attrLen, err := c.u16()
		if err != nil {
			return nil, err
		}
		attrs, err := c.take(int(attrLen))
		if err != nil {
			return nil, err
		}
		route := &bgp.Route{Prefix: rec.Prefix}
		if err := decodeAttrs(attrs, true, route); err != nil {
			return nil, err
		}
		rec.PeerIndex = append(rec.PeerIndex, idx)
		rec.Entries = append(rec.Entries, TableEntry{
			PeerAS:       peers[idx].AS,
			PeerIP:       peers[idx].IP,
			Route:        route,
			OriginatedAt: origAt,
		})
	}
	return rec, nil
}

// ReadAll drains the reader, returning every record until EOF.
func ReadAll(r io.Reader) ([]Record, error) {
	rd := NewReader(r)
	var out []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
