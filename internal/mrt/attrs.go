package mrt

import (
	"encoding/binary"
	"fmt"

	"github.com/policyscope/policyscope/internal/bgp"
)

// BGP path attribute encoding. TABLE_DUMP carries 2-byte AS numbers in
// AS_PATH; TABLE_DUMP_V2 RIB entries always use 4-byte AS numbers
// (RFC 6396 §4.3.4).

const (
	segmentASSet      = 1
	segmentASSequence = 2
)

// encodeAttrs serializes the route's path attributes in canonical order.
func encodeAttrs(r *bgp.Route, as4 bool) []byte {
	var out []byte

	// ORIGIN — well-known mandatory.
	out = append(out, flagTransitive, attrOrigin, 1, byte(r.Origin))

	// AS_PATH — well-known mandatory; a single AS_SEQUENCE segment (or
	// empty for locally originated routes).
	path := encodeASPath(r.Path, as4)
	out = appendAttr(out, flagTransitive, attrASPath, path)

	// NEXT_HOP.
	var nh [4]byte
	binary.BigEndian.PutUint32(nh[:], r.NextHop)
	out = appendAttr(out, flagTransitive, attrNextHop, nh[:])

	// MULTI_EXIT_DISC — optional non-transitive, written when non-zero.
	if r.MED != 0 {
		var med [4]byte
		binary.BigEndian.PutUint32(med[:], r.MED)
		out = appendAttr(out, flagOptional, attrMED, med[:])
	}

	// LOCAL_PREF — well-known on iBGP sessions; table dumps carry it
	// whenever the collector's peer exported it. Always written so the
	// paper's Looking-Glass-grade analyses can read it back.
	var lp [4]byte
	binary.BigEndian.PutUint32(lp[:], r.LocalPref)
	out = appendAttr(out, flagTransitive, attrLocalPref, lp[:])

	// COMMUNITY — optional transitive.
	if len(r.Communities) > 0 {
		cs := make([]byte, 4*len(r.Communities))
		for i, c := range r.Communities {
			binary.BigEndian.PutUint32(cs[i*4:], uint32(c))
		}
		out = appendAttr(out, flagOptional|flagTransitive, attrCommunity, cs)
	}
	return out
}

func encodeASPath(p bgp.Path, as4 bool) []byte {
	if len(p) == 0 {
		return nil
	}
	size := 2
	if as4 {
		size = 4
	}
	out := make([]byte, 2+size*len(p))
	out[0] = segmentASSequence
	out[1] = byte(len(p))
	for i, asn := range p {
		if as4 {
			binary.BigEndian.PutUint32(out[2+i*4:], uint32(asn))
		} else {
			binary.BigEndian.PutUint16(out[2+i*2:], uint16(asn))
		}
	}
	return out
}

func appendAttr(dst []byte, flags, code byte, body []byte) []byte {
	if len(body) > 0xff {
		flags |= flagExtLen
		dst = append(dst, flags, code, byte(len(body)>>8), byte(len(body)))
	} else {
		dst = append(dst, flags, code, byte(len(body)))
	}
	return append(dst, body...)
}

// decodeAttrs fills route fields from an attribute blob.
func decodeAttrs(blob []byte, as4 bool, r *bgp.Route) error {
	c := byteCursor{b: blob}
	for c.remain() > 0 {
		flags, err := c.u8()
		if err != nil {
			return err
		}
		code, err := c.u8()
		if err != nil {
			return err
		}
		var length int
		if flags&flagExtLen != 0 {
			l, err := c.u16()
			if err != nil {
				return err
			}
			length = int(l)
		} else {
			l, err := c.u8()
			if err != nil {
				return err
			}
			length = int(l)
		}
		body, err := c.take(length)
		if err != nil {
			return err
		}
		switch code {
		case attrOrigin:
			if length != 1 {
				return fmt.Errorf("%w: ORIGIN length %d", ErrBadRecord, length)
			}
			if body[0] > 2 {
				return fmt.Errorf("%w: ORIGIN value %d", ErrBadRecord, body[0])
			}
			r.Origin = bgp.Origin(body[0])
		case attrASPath:
			path, err := decodeASPath(body, as4)
			if err != nil {
				return err
			}
			r.Path = path
		case attrNextHop:
			if length != 4 {
				return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadRecord, length)
			}
			r.NextHop = binary.BigEndian.Uint32(body)
		case attrMED:
			if length != 4 {
				return fmt.Errorf("%w: MED length %d", ErrBadRecord, length)
			}
			r.MED = binary.BigEndian.Uint32(body)
		case attrLocalPref:
			if length != 4 {
				return fmt.Errorf("%w: LOCAL_PREF length %d", ErrBadRecord, length)
			}
			r.LocalPref = binary.BigEndian.Uint32(body)
		case attrCommunity:
			if length%4 != 0 {
				return fmt.Errorf("%w: COMMUNITY length %d", ErrBadRecord, length)
			}
			cs := make([]bgp.Community, length/4)
			for i := range cs {
				cs[i] = bgp.Community(binary.BigEndian.Uint32(body[i*4:]))
			}
			r.Communities = bgp.NewCommunities(cs...)
		default:
			// Unknown attributes are skipped, as real parsers do.
		}
	}
	return nil
}

func decodeASPath(body []byte, as4 bool) (bgp.Path, error) {
	size := 2
	if as4 {
		size = 4
	}
	var path bgp.Path
	c := byteCursor{b: body}
	for c.remain() > 0 {
		segType, err := c.u8()
		if err != nil {
			return nil, err
		}
		count, err := c.u8()
		if err != nil {
			return nil, err
		}
		if segType != segmentASSequence && segType != segmentASSet {
			return nil, fmt.Errorf("%w: AS_PATH segment type %d", ErrBadRecord, segType)
		}
		seg, err := c.take(int(count) * size)
		if err != nil {
			return nil, err
		}
		for i := 0; i < int(count); i++ {
			var asn uint32
			if as4 {
				asn = binary.BigEndian.Uint32(seg[i*4:])
			} else {
				asn = uint32(binary.BigEndian.Uint16(seg[i*2:]))
			}
			path = append(path, bgp.ASN(asn))
		}
	}
	return path, nil
}
