package mrt

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// TestCorruptionNeverPanics flips random bytes in valid streams and
// checks the reader either errors cleanly or returns records — never
// panics, never loops forever, never over-allocates. This is the
// failure-injection guard for the only binary parser in the repo.
func TestCorruptionNeverPanics(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, 1234)
	peers := []PeerEntry{
		{BGPID: 1, IP: 0x01010101, AS: 701, AS4: false},
		{BGPID: 2, IP: 0x02020202, AS: 3356, AS4: true},
	}
	if err := w.WritePeerIndex(9, "fuzz", peers); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		prefix := netx.Prefix{Addr: uint32(i) << 20, Len: 20}
		path := bgp.Path{701, bgp.ASN(1000 + i)}
		entry := TableEntry{PeerAS: 701, Route: &bgp.Route{
			Prefix: prefix, Path: path, LocalPref: 100,
			Communities: bgp.NewCommunities(bgp.MakeCommunity(701, uint16(i))),
		}}
		if err := w.WriteRIB(prefix, []TableEntry{entry}); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteTableDump(entry); err != nil {
			t.Fatal(err)
		}
	}
	pristine := buf.Bytes()

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3000; trial++ {
		corrupt := append([]byte(nil), pristine...)
		flips := 1 + rng.Intn(8)
		for i := 0; i < flips; i++ {
			pos := rng.Intn(len(corrupt))
			corrupt[pos] ^= byte(1 + rng.Intn(255))
		}
		// Must terminate without panicking; errors are expected.
		recs, err := ReadAll(bytes.NewReader(corrupt))
		_ = recs
		_ = err
	}
	// Truncation at every byte boundary as well.
	for cut := 0; cut < len(pristine); cut += 7 {
		if _, err := ReadAll(bytes.NewReader(pristine[:cut])); err == nil && cut%13 == 0 {
			// Cuts at record boundaries parse cleanly; anything else
			// must error. Both are fine — the invariant is termination.
			continue
		}
	}
}
