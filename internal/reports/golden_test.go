package reports

import (
	"bytes"
	"strings"
	"testing"
)

// Golden tests: the renderers' byte-exact output. The JSON surface
// (cmd/repro -format json) is byte-stable by construction; these pin
// the text surface the same way, so alignment or padding regressions
// show up as a readable diff.

func renderTable(t *testing.T, tb *Table) string {
	t.Helper()
	var buf bytes.Buffer
	n, err := tb.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.String()
}

func renderChart(t *testing.T, c *Chart) string {
	t.Helper()
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.String()
}

func TestTableGolden(t *testing.T) {
	tb := &Table{
		Title:   "Table X: golden",
		Columns: []string{"AS", "name", "% SA"},
		Note:    "a note",
	}
	tb.AddRow("AS1", "alpha", "48.6")
	tb.AddRow("AS6453", "b", "7")
	want := strings.Join([]string{
		"Table X: golden",
		"AS      name   % SA",
		"------  -----  ----",
		"AS1     alpha  48.6",
		"AS6453  b      7",
		"  a note",
		"",
		"",
	}, "\n")
	if got := renderTable(t, tb); got != want {
		t.Fatalf("golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestTableGoldenWideCells(t *testing.T) {
	// A body cell wider than its header stretches the column; trailing
	// spaces are trimmed per line.
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("very-long-cell-value", "x")
	tb.AddRow("s", "")
	want := strings.Join([]string{
		"a                     b",
		"--------------------  -",
		"very-long-cell-value  x",
		"s",
		"",
		"",
	}, "\n")
	if got := renderTable(t, tb); got != want {
		t.Fatalf("golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestTableGoldenEmptyRows(t *testing.T) {
	// No rows: title, header and rule still render.
	tb := &Table{Title: "Empty", Columns: []string{"only", "header"}}
	want := strings.Join([]string{
		"Empty",
		"only  header",
		"----  ------",
		"",
		"",
	}, "\n")
	if got := renderTable(t, tb); got != want {
		t.Fatalf("golden mismatch:\n got: %q\nwant: %q", got, want)
	}
	// Rows longer than the header are truncated to the column count.
	tb2 := &Table{Columns: []string{"a"}}
	tb2.AddRow("1", "overflow")
	if got := renderTable(t, tb2); strings.Contains(got, "overflow") {
		t.Fatalf("overflow cell rendered: %q", got)
	}
}

func TestChartGoldenLinear(t *testing.T) {
	c := &Chart{
		Title:  "Figure X: golden",
		XLabel: "epoch",
		YLabel: "prefixes",
		X:      []string{"1", "2"},
		Series: map[string][]float64{
			"all": {10, 5},
			"sa":  {0, 10},
		},
		SeriesOrder: []string{"all", "sa"},
		Width:       10,
	}
	want := strings.Join([]string{
		"Figure X: golden",
		"  y: prefixes",
		"  1      all |########## 10",
		"         sa  | 0",
		"  2      all |##### 5",
		"         sa  |########## 10",
		"  x: epoch",
		"",
		"",
	}, "\n")
	if got := renderChart(t, c); got != want {
		t.Fatalf("golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestChartGoldenLogAndRagged(t *testing.T) {
	// Log scaling marks the axis, and a series shorter than X simply
	// stops contributing rows.
	c := &Chart{
		YLabel: "n",
		X:      []string{"a", "bb", "ccc"},
		Series: map[string][]float64{
			"long":  {1, 10, 100},
			"short": {1},
		},
		SeriesOrder: []string{"long", "short"},
		LogY:        true,
		Width:       8,
	}
	want := strings.Join([]string{
		"  y: n (log scale)",
		"  a    long  |# 1",
		"       short |# 1",
		"  bb   long  |#### 10",
		"  ccc  long  |######## 100",
		"",
		"",
	}, "\n")
	if got := renderChart(t, c); got != want {
		t.Fatalf("golden mismatch:\n got: %q\nwant: %q", got, want)
	}
}
