// Package reports renders experiment results as aligned text tables and
// simple ASCII charts — one renderer per shape of table/figure in the
// paper, so every experiment binary and the repro harness print
// uniformly.
package reports

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a generic aligned text table.
type Table struct {
	// Title is printed above the table (e.g. "Table 5: ...").
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the body cells; short rows are padded.
	Rows [][]string
	// Note, when non-empty, is printed beneath the table.
	Note string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n := len(t.Columns)
	widths := make([]int, n)
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i := 0; i < n && i < len(row); i++ {
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
	}
	write := func(format string, args ...interface{}) error {
		k, err := fmt.Fprintf(bw, format, args...)
		total += int64(k)
		return err
	}
	if t.Title != "" {
		if err := write("%s\n", t.Title); err != nil {
			return total, err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i := 0; i < n; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		return write("%s\n", strings.TrimRight(b.String(), " "))
	}
	if err := line(t.Columns); err != nil {
		return total, err
	}
	rule := make([]string, n)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return total, err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return total, err
		}
	}
	if t.Note != "" {
		if err := write("  %s\n", t.Note); err != nil {
			return total, err
		}
	}
	if err := write("\n"); err != nil {
		return total, err
	}
	return total, bw.Flush()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a percentage with adaptive precision, the way the paper's
// tables mix "94.3" and "99.9982".
func Pct(v float64) string {
	switch {
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	case v >= 99.9:
		return fmt.Sprintf("%.4f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// Chart is a simple ASCII chart for the paper's figures: one or two
// series over a shared x axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// X holds the x values (rendered as-is).
	X []string
	// Series maps a legend name to y values parallel to X.
	Series map[string][]float64
	// SeriesOrder fixes legend order; missing names are appended sorted.
	SeriesOrder []string
	// LogY renders bar lengths on a log10 scale (Figure 6 style).
	LogY bool
	// Width bounds bar length in characters (default 50).
	Width int
}

// WriteTo renders the chart as labelled horizontal bars, one block per
// x value.
func (c *Chart) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	write := func(format string, args ...interface{}) error {
		k, err := fmt.Fprintf(bw, format, args...)
		total += int64(k)
		return err
	}
	if c.Title != "" {
		if err := write("%s\n", c.Title); err != nil {
			return total, err
		}
	}
	if c.YLabel != "" {
		if err := write("  y: %s%s\n", c.YLabel, map[bool]string{true: " (log scale)", false: ""}[c.LogY]); err != nil {
			return total, err
		}
	}
	width := c.Width
	if width <= 0 {
		width = 50
	}
	names := c.seriesNames()
	maxV := 0.0
	for _, name := range names {
		for _, v := range c.Series[name] {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	scale := func(v float64) int {
		if v <= 0 {
			return 0
		}
		if c.LogY {
			return int(math.Round(math.Log10(1+v) / math.Log10(1+maxV) * float64(width)))
		}
		return int(math.Round(v / maxV * float64(width)))
	}
	xw := len(c.XLabel)
	for _, x := range c.X {
		if len(x) > xw {
			xw = len(x)
		}
	}
	nameW := 0
	for _, name := range names {
		if len(name) > nameW {
			nameW = len(name)
		}
	}
	for i, x := range c.X {
		for j, name := range names {
			vals := c.Series[name]
			if i >= len(vals) {
				continue
			}
			label := ""
			if j == 0 {
				label = x
			}
			bar := strings.Repeat("#", scale(vals[i]))
			if err := write("  %s  %s |%s %g\n", pad(label, xw), pad(name, nameW), bar, vals[i]); err != nil {
				return total, err
			}
		}
	}
	if c.XLabel != "" {
		if err := write("  x: %s\n", c.XLabel); err != nil {
			return total, err
		}
	}
	if err := write("\n"); err != nil {
		return total, err
	}
	return total, bw.Flush()
}

func (c *Chart) seriesNames() []string {
	seen := make(map[string]bool, len(c.SeriesOrder))
	var names []string
	for _, n := range c.SeriesOrder {
		if _, ok := c.Series[n]; ok && !seen[n] {
			names = append(names, n)
			seen[n] = true
		}
	}
	var remaining []string
	for n := range c.Series {
		if !seen[n] {
			remaining = append(remaining, n)
		}
	}
	// Deterministic order for unlisted series.
	for i := 0; i < len(remaining); i++ {
		for j := i + 1; j < len(remaining); j++ {
			if remaining[j] < remaining[i] {
				remaining[i], remaining[j] = remaining[j], remaining[i]
			}
		}
	}
	return append(names, remaining...)
}

// CSV renders the chart's data as comma-separated values for offline
// plotting.
func (c *Chart) CSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := c.seriesNames()
	if _, err := fmt.Fprintf(bw, "x,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	for i, x := range c.X {
		cells := []string{x}
		for _, name := range names {
			vals := c.Series[name]
			if i < len(vals) {
				cells = append(cells, fmt.Sprintf("%g", vals[i]))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintf(bw, "%s\n", strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}
