package reports

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Table 5: SA prefixes",
		Columns: []string{"AS", "% SA"},
		Note:    "synthetic substrate",
	}
	tb.AddRow("AS1", "32")
	tb.AddRow("AS6453", "48.6")
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 5", "AS", "% SA", "AS6453", "48.6", "----", "synthetic substrate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + rule + 2 rows + note.
	if len(lines) != 6 {
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	// Columns align: "% SA" column starts at the same offset in header
	// and rows.
	headerIdx := strings.Index(lines[1], "% SA")
	rowIdx := strings.Index(lines[3], "32")
	if headerIdx != rowIdx {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b", "c"}}
	tb.AddRow("only")
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only") {
		t.Fatal("short row lost")
	}
}

func TestPct(t *testing.T) {
	cases := map[float64]string{
		100:     "100",
		94.3:    "94.3",
		99.9982: "99.9982",
		0:       "0",
		48.6:    "48.6",
	}
	for in, want := range cases {
		if got := Pct(in); got != want {
			t.Errorf("Pct(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{
		Title:  "Figure 6(a): SA prefixes for AS1",
		XLabel: "day",
		YLabel: "prefixes",
		X:      []string{"1", "2", "3"},
		Series: map[string][]float64{
			"All prefixes": {1000, 1100, 1050},
			"SA prefixes":  {300, 310, 0},
		},
		SeriesOrder: []string{"All prefixes", "SA prefixes"},
		LogY:        true,
		Width:       20,
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6(a)", "All prefixes", "SA prefixes", "log scale", "x: day", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The zero value draws no bar.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " 0") && strings.Contains(line, "SA prefixes") && strings.Contains(line, "#") &&
			strings.HasSuffix(strings.TrimSpace(line), " 0") {
			t.Fatalf("zero value produced a bar: %q", line)
		}
	}
}

func TestChartSeriesOrderAndCSV(t *testing.T) {
	c := &Chart{
		X: []string{"a", "b"},
		Series: map[string][]float64{
			"zeta":  {1, 2},
			"alpha": {3, 4},
		},
	}
	names := c.seriesNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("unlisted series must sort: %v", names)
	}
	var buf bytes.Buffer
	if err := c.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "x,alpha,zeta\na,3,1\nb,4,2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestChartEmptyAndAllZero(t *testing.T) {
	c := &Chart{X: []string{"1"}, Series: map[string][]float64{"s": {0}}}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "s |") {
		t.Fatalf("zero series row missing:\n%s", buf.String())
	}
}
