package relfile_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/relfile"
)

// TestRoundTripProperty: random record sets survive Write→Read→Write
// byte-identically, across several seeds.
func TestRoundTripProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(200)
		recs := make([]relfile.Record, 0, n)
		seen := map[[2]bgp.ASN]bool{}
		for len(recs) < n {
			a := bgp.ASN(1 + rng.Intn(5000))
			b := bgp.ASN(1 + rng.Intn(5000))
			if a == b {
				continue
			}
			key := [2]bgp.ASN{a, b}
			if a > b {
				key = [2]bgp.ASN{b, a}
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			code := []int{relfile.CodeProviderCustomer, relfile.CodePeer, relfile.CodeSibling}[rng.Intn(3)]
			if code != relfile.CodeProviderCustomer && a > b {
				a, b = b, a // canonical smaller-first for symmetric edges
			}
			recs = append(recs, relfile.Record{A: a, B: b, Code: code})
		}

		var first bytes.Buffer
		n1, err := relfile.Write(&first, recs)
		if err != nil {
			t.Fatalf("seed %d: write: %v", seed, err)
		}
		if n1 != int64(first.Len()) {
			t.Fatalf("seed %d: Write reported %d bytes, wrote %d", seed, n1, first.Len())
		}
		parsed, err := relfile.Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read: %v", seed, err)
		}
		if len(parsed) != len(recs) {
			t.Fatalf("seed %d: wrote %d records, read %d", seed, len(recs), len(parsed))
		}
		for i := range parsed {
			want := recs[i]
			want.Line = parsed[i].Line
			if parsed[i] != want {
				t.Fatalf("seed %d: record %d: got %+v want %+v", seed, i, parsed[i], want)
			}
		}
		var second bytes.Buffer
		if _, err := relfile.Write(&second, parsed); err != nil {
			t.Fatalf("seed %d: rewrite: %v", seed, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: round trip not byte-identical", seed)
		}
	}
}

// TestReadTolerance: comments, blanks, and extra serial-2 fields parse.
func TestReadTolerance(t *testing.T) {
	in := "# source: test\n\n10|20|-1|bgp\n1|2|0\n3|4|1\n"
	recs, err := relfile.Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []relfile.Record{
		{A: 10, B: 20, Code: relfile.CodeProviderCustomer, Line: 3},
		{A: 1, B: 2, Code: relfile.CodePeer, Line: 4},
		{A: 3, B: 4, Code: relfile.CodeSibling, Line: 5},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, recs[i], want[i])
		}
	}
}

// TestReadErrors: malformed lines fail with the offending line number.
func TestReadErrors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"1|2\n", "line 1"},
		{"x|2|0\n", "bad ASN"},
		{"1|y|0\n", "bad ASN"},
		{"1|2|z\n", "bad code"},
		{"1|2|7\n", "unknown relationship code"},
	}
	for _, tc := range cases {
		if _, err := relfile.Read(strings.NewReader(tc.in)); err == nil {
			t.Fatalf("input %q: expected error", tc.in)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("input %q: error %q does not mention %q", tc.in, err, tc.want)
		}
	}
}

// TestGraphDelegation: a graph round-tripped through its serializer and
// relfile directly agree byte for byte.
func TestGraphDelegation(t *testing.T) {
	g := asgraph.New()
	if err := g.AddProviderCustomer(7018, 701); err != nil {
		t.Fatal(err)
	}
	if err := g.AddPeer(701, 1239); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSibling(7018, 7132); err != nil {
		t.Fatal(err)
	}
	var viaGraph, viaRecs bytes.Buffer
	if _, err := g.WriteTo(&viaGraph); err != nil {
		t.Fatal(err)
	}
	if _, err := relfile.Write(&viaRecs, g.Records()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaGraph.Bytes(), viaRecs.Bytes()) {
		t.Fatalf("Graph.WriteTo %q != relfile.Write(Records()) %q", viaGraph.String(), viaRecs.String())
	}
	back, err := asgraph.Read(bytes.NewReader(viaGraph.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if _, err := back.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaGraph.Bytes(), again.Bytes()) {
		t.Fatalf("graph round trip not byte-identical:\n%s\nvs\n%s", viaGraph.String(), again.String())
	}
}
