// Package relfile reads and writes the CAIDA AS-relationship file
// format the community standardized on after Gao's work:
//
//	# comment
//	<provider>|<customer>|-1
//	<peer>|<peer>|0
//	<sibling>|<sibling>|1
//
// Every consumer of the format in the tree — the asgraph serializer,
// the caida dataset source, cmd/inferrel, and the inference scorer —
// goes through this package so the dialect is defined exactly once.
// The reader is tolerant: comment and blank lines are skipped, and
// trailing |-separated fields after the relationship code (CAIDA
// serial-2 appends an inference source) are ignored.
package relfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/policyscope/policyscope/internal/bgp"
)

// Relationship codes used by the file format.
const (
	// CodeProviderCustomer marks "A is B's provider".
	CodeProviderCustomer = -1
	// CodePeer marks a peer-to-peer edge (written smaller ASN first).
	CodePeer = 0
	// CodeSibling marks a sibling edge (written smaller ASN first).
	CodeSibling = 1
)

// Record is one relationship line. Its meaning depends on Code: for
// CodeProviderCustomer, A is the provider and B the customer; for
// CodePeer and CodeSibling the edge is symmetric and canonical files
// put the smaller ASN in A.
type Record struct {
	A, B bgp.ASN
	Code int
	// Line is the 1-based source line the record was parsed from
	// (0 for synthesized records).
	Line int
}

// String renders the record as its file line (without newline).
func (r Record) String() string { return fmt.Sprintf("%d|%d|%d", r.A, r.B, r.Code) }

// Read parses an a|b|rel stream into records in file order.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("relfile: line %d: %w", lineNo, err)
		}
		rec.Line = lineNo
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// parseLine parses one non-comment line.
func parseLine(line string) (Record, error) {
	parts := strings.Split(line, "|")
	if len(parts) < 3 {
		return Record{}, fmt.Errorf("want a|b|rel, got %q", line)
	}
	a, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return Record{}, fmt.Errorf("bad ASN %q", parts[0])
	}
	b, err := strconv.ParseUint(parts[1], 10, 32)
	if err != nil {
		return Record{}, fmt.Errorf("bad ASN %q", parts[1])
	}
	code, err := strconv.Atoi(parts[2])
	if err != nil {
		return Record{}, fmt.Errorf("bad code %q", parts[2])
	}
	switch code {
	case CodeProviderCustomer, CodePeer, CodeSibling:
	default:
		return Record{}, fmt.Errorf("unknown relationship code %d", code)
	}
	return Record{A: bgp.ASN(a), B: bgp.ASN(b), Code: code}, nil
}

// Write serializes records in the given order, one line each, and
// reports the bytes written.
func Write(w io.Writer, recs []Record) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	for _, rec := range recs {
		n, err := fmt.Fprintf(bw, "%d|%d|%d\n", rec.A, rec.B, rec.Code)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}
