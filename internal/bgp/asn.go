// Package bgp models the BGP constructs the paper's analyses consume:
// AS numbers and paths, communities, route attributes, the sequential
// route-selection (decision) process, and routing information bases.
//
// The model is deliberately AS-level. The unit of routing is an AS (with an
// optional multi-router refinement in internal/ibgp), matching how the IMC
// 2003 paper reads BGP tables: one table per vantage AS, one route per
// (prefix, neighbor AS).
package bgp

import (
	"fmt"
	"strconv"
	"strings"
)

// ASN is an autonomous system number. The paper's era is 16-bit ASNs but we
// store 32 bits so modern data sets fit.
type ASN uint32

// String renders the ASN in the conventional "AS123" form.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

// Path is an AS path: the sequence of ASes a route announcement traversed,
// nearest AS first (index 0 is the neighbor the route was learned from, the
// last element is the origin AS). Only AS_SEQUENCE segments are modelled;
// the analyses in the paper never rely on AS_SET internals.
type Path []ASN

// Clone returns an independent copy of p.
func (p Path) Clone() Path {
	if p == nil {
		return nil
	}
	return append(Path(nil), p...)
}

// Prepend returns a new path with asn prepended n times (n >= 1). It is the
// export-side AS-path prepending primitive.
func (p Path) Prepend(asn ASN, n int) Path {
	if n < 1 {
		n = 1
	}
	out := make(Path, 0, len(p)+n)
	for i := 0; i < n; i++ {
		out = append(out, asn)
	}
	return append(out, p...)
}

// Contains reports whether asn appears anywhere in the path. BGP's loop
// detection discards received routes whose path already contains the
// receiver's ASN.
func (p Path) Contains(asn ASN) bool {
	for _, a := range p {
		if a == asn {
			return true
		}
	}
	return false
}

// Origin returns the originating AS (the last element) and false when the
// path is empty (a locally originated route).
func (p Path) Origin() (ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return p[len(p)-1], true
}

// First returns the neighbor AS the route was learned from and false when
// the path is empty.
func (p Path) First() (ASN, bool) {
	if len(p) == 0 {
		return 0, false
	}
	return p[0], true
}

// Len returns the AS-path length used by the decision process. Repeated
// (prepended) ASNs each count.
func (p Path) Len() int { return len(p) }

// Equal reports element-wise equality.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the path in the space-separated form used by route
// servers: "701 1239 7018".
func (p Path) String() string {
	var b strings.Builder
	for i, a := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(a), 10))
	}
	return b.String()
}

// ParsePath parses a space-separated AS path ("701 1239 7018"). An empty
// string yields an empty path.
func ParsePath(s string) (Path, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	fields := strings.Fields(s)
	out := make(Path, 0, len(fields))
	for _, f := range fields {
		n, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bgp: bad AS path element %q: %v", f, err)
		}
		out = append(out, ASN(n))
	}
	return out, nil
}
