package bgp

// The BGP decision process, as enumerated in Section 2.2.1 of the paper:
//
//  1. highest local preference
//  2. shortest AS path
//  3. lowest origin type
//  4. smallest MED, compared only between routes with the same next-hop AS
//  5. eBGP-learned preferred over iBGP-learned
//  6. smallest IGP metric to the egress router
//  7. smallest router ID
//
// Compare and Best implement it exactly; the *steps* are also exposed
// individually so the ablation benchmarks can truncate the process.

// DecisionStep identifies one stage of the route-selection process.
type DecisionStep int

// The seven steps, in order.
const (
	StepLocalPref DecisionStep = iota + 1
	StepASPathLen
	StepOrigin
	StepMED
	StepEBGP
	StepIGPMetric
	StepRouterID
)

func (s DecisionStep) String() string {
	switch s {
	case StepLocalPref:
		return "local-preference"
	case StepASPathLen:
		return "as-path-length"
	case StepOrigin:
		return "origin"
	case StepMED:
		return "med"
	case StepEBGP:
		return "ebgp-over-ibgp"
	case StepIGPMetric:
		return "igp-metric"
	case StepRouterID:
		return "router-id"
	}
	return "unknown-step"
}

// Compare returns a negative value if a is preferred over b, positive if b
// is preferred over a, and 0 if the full process cannot separate them. It
// runs steps 1..maxStep; pass StepRouterID (or use Compare7) for the whole
// process.
func Compare(a, b *Route, maxStep DecisionStep) int {
	if c := cmpStep(a, b, StepLocalPref); c != 0 || maxStep == StepLocalPref {
		return c
	}
	if c := cmpStep(a, b, StepASPathLen); c != 0 || maxStep == StepASPathLen {
		return c
	}
	if c := cmpStep(a, b, StepOrigin); c != 0 || maxStep == StepOrigin {
		return c
	}
	if c := cmpStep(a, b, StepMED); c != 0 || maxStep == StepMED {
		return c
	}
	if c := cmpStep(a, b, StepEBGP); c != 0 || maxStep == StepEBGP {
		return c
	}
	if c := cmpStep(a, b, StepIGPMetric); c != 0 || maxStep == StepIGPMetric {
		return c
	}
	return cmpStep(a, b, StepRouterID)
}

// Compare7 runs the full seven-step process.
func Compare7(a, b *Route) int { return Compare(a, b, StepRouterID) }

func cmpStep(a, b *Route, step DecisionStep) int {
	switch step {
	case StepLocalPref:
		return cmpDesc(a.LocalPref, b.LocalPref)
	case StepASPathLen:
		return cmpAsc(uint32(a.Path.Len()), uint32(b.Path.Len()))
	case StepOrigin:
		return cmpAsc(uint32(a.Origin), uint32(b.Origin))
	case StepMED:
		an, aok := a.NextHopAS()
		bn, bok := b.NextHopAS()
		if !aok || !bok || an != bn {
			return 0 // MED is only comparable between same-neighbor routes
		}
		return cmpAsc(a.MED, b.MED)
	case StepEBGP:
		switch {
		case !a.FromIBGP && b.FromIBGP:
			return -1
		case a.FromIBGP && !b.FromIBGP:
			return 1
		}
		return 0
	case StepIGPMetric:
		return cmpAsc(a.IGPMetric, b.IGPMetric)
	case StepRouterID:
		return cmpAsc(a.RouterID, b.RouterID)
	}
	return 0
}

func cmpAsc(a, b uint32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpDesc(a, b uint32) int { return cmpAsc(b, a) }

// Best returns the most preferred route among candidates under the process
// truncated at maxStep. It returns nil for an empty set.
//
// Because MED is only comparable between routes with the same next-hop AS,
// a naive linear scan is order-dependent (the well-known MED
// non-transitivity). Best therefore implements deterministic-MED
// selection, as production routers do: candidates are first grouped by
// next-hop AS and the winner of each group is chosen (where MED applies),
// then the group winners are compared (where MED never fires). Remaining
// complete ties go to the earliest candidate ("oldest route wins").
func Best(candidates []*Route, maxStep DecisionStep) *Route {
	var (
		order  []ASN
		winner = make(map[ASN]*Route, len(candidates))
	)
	for _, r := range candidates {
		if r == nil {
			continue
		}
		nbr, _ := r.NextHopAS() // 0 groups all locally originated routes
		cur, ok := winner[nbr]
		if !ok {
			winner[nbr] = r
			order = append(order, nbr)
		} else if Compare(r, cur, maxStep) < 0 {
			winner[nbr] = r
		}
	}
	var best *Route
	for _, nbr := range order {
		if r := winner[nbr]; best == nil || Compare(r, best, maxStep) < 0 {
			best = r
		}
	}
	return best
}

// Best7 selects under the full process.
func Best7(candidates []*Route) *Route { return Best(candidates, StepRouterID) }

// DecidedBy reports the first step that separates a from b, or 0 when the
// routes tie through the whole process. Used to characterize how often the
// paper-era default (shortest path) is overridden by local preference.
func DecidedBy(a, b *Route) DecisionStep {
	for _, s := range []DecisionStep{StepLocalPref, StepASPathLen, StepOrigin, StepMED, StepEBGP, StepIGPMetric, StepRouterID} {
		if cmpStep(a, b, s) != 0 {
			return s
		}
	}
	return 0
}
