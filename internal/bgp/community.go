package bgp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Community is an RFC 1997 BGP community value: the high 16 bits are
// conventionally an ASN, the low 16 bits an operator-defined value.
type Community uint32

// Well-known communities (RFC 1997).
const (
	// NoExport: routes carrying it must not be advertised outside the
	// receiving AS.
	NoExport Community = 0xFFFFFF01
	// NoAdvertise: routes carrying it must not be advertised to any peer.
	NoAdvertise Community = 0xFFFFFF02
	// NoExportSubconfed: not used by the model, present for parsing.
	NoExportSubconfed Community = 0xFFFFFF03
)

// MakeCommunity builds a community from its AS and value halves.
func MakeCommunity(asn ASN, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// AS returns the high 16 bits interpreted as an ASN.
func (c Community) AS() ASN { return ASN(c >> 16) }

// Value returns the low 16 bits.
func (c Community) Value() uint16 { return uint16(c) }

// IsWellKnown reports whether c is one of the RFC 1997 reserved values.
func (c Community) IsWellKnown() bool {
	return c == NoExport || c == NoAdvertise || c == NoExportSubconfed
}

// String renders c in the "AS:value" form used by router CLIs, or the
// conventional name for well-known values.
func (c Community) String() string {
	switch c {
	case NoExport:
		return "no-export"
	case NoAdvertise:
		return "no-advertise"
	case NoExportSubconfed:
		return "no-export-subconfed"
	}
	return strconv.FormatUint(uint64(c>>16), 10) + ":" + strconv.FormatUint(uint64(c&0xffff), 10)
}

// ParseCommunity parses "AS:value" or a well-known name.
func ParseCommunity(s string) (Community, error) {
	switch s {
	case "no-export":
		return NoExport, nil
	case "no-advertise":
		return NoAdvertise, nil
	case "no-export-subconfed":
		return NoExportSubconfed, nil
	}
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, fmt.Errorf("bgp: bad community %q", s)
	}
	hi, err := strconv.ParseUint(s[:colon], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: bad community %q: %v", s, err)
	}
	lo, err := strconv.ParseUint(s[colon+1:], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: bad community %q: %v", s, err)
	}
	return Community(uint32(hi)<<16 | uint32(lo)), nil
}

// Communities is an attribute set of community values. It is kept sorted
// and deduplicated by the constructors so comparisons are deterministic.
type Communities []Community

// NewCommunities builds a normalized set from vals.
func NewCommunities(vals ...Community) Communities {
	if len(vals) == 0 {
		return nil
	}
	out := append(Communities(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dst := out[:1]
	for _, c := range out[1:] {
		if c != dst[len(dst)-1] {
			dst = append(dst, c)
		}
	}
	return dst
}

// Has reports whether c is in the set.
func (cs Communities) Has(c Community) bool {
	i := sort.Search(len(cs), func(i int) bool { return cs[i] >= c })
	return i < len(cs) && cs[i] == c
}

// Add returns a normalized set including c. The receiver is not mutated.
func (cs Communities) Add(c Community) Communities {
	if cs.Has(c) {
		return cs
	}
	return NewCommunities(append(cs.Clone(), c)...)
}

// Clone returns an independent copy.
func (cs Communities) Clone() Communities {
	if cs == nil {
		return nil
	}
	return append(Communities(nil), cs...)
}

// String renders the set space-separated, the way IOS prints it.
func (cs Communities) String() string {
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// ParseCommunities parses a space-separated community list.
func ParseCommunities(s string) (Communities, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return nil, nil
	}
	out := make([]Community, 0, len(fields))
	for _, f := range fields {
		c, err := ParseCommunity(f)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return NewCommunities(out...), nil
}
