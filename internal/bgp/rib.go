package bgp

import (
	"slices"
	"sync/atomic"

	"github.com/policyscope/policyscope/internal/netx"
)

// RIB is a routing information base for one AS: for each prefix the set of
// candidate routes (at most one per neighbor AS, as BGP sessions replace
// prior announcements) and the selected best route.
//
// RIB is the unit the paper's analyses read. It intentionally keeps *all*
// candidates, not just the best route, because Looking Glass output
// ("show ip bgp") exposes every path and several analyses need them.
type RIB struct {
	// Owner is the AS whose table this is.
	Owner ASN

	entries map[netx.Prefix]*ribEntry
	// sorted caches Prefixes() output. Mutations that change the prefix
	// set store nil (invalidate); readers rebuild lazily. It is atomic
	// because analyses read one table from many goroutines — concurrent
	// readers may both rebuild (benign, each result is equivalent) but
	// must never observe a torn cache. The cached slice is never mutated
	// in place, so COW clones may share it safely.
	sorted atomic.Pointer[[]netx.Prefix]
	// maxStep lets ablations truncate the decision process; zero means
	// the full seven steps.
	maxStep DecisionStep
	// cow marks a CloneCOW table: entries are shared with the source
	// and copied on first mutation; owned tracks the prefixes whose
	// entries this table already owns.
	cow   bool
	owned map[netx.Prefix]bool
}

// ribEntry holds one prefix's candidates as two aligned slices sorted by
// announcing neighbor ASN (locally originated routes use the owner's own
// ASN as the key). The flat layout keeps Upsert/Withdraw allocation-free
// in the steady state and makes the deterministic candidate order
// (ascending neighbor) implicit instead of re-sorted per access.
type ribEntry struct {
	nbrs   []ASN
	routes []*Route
	best   *Route
}

// find returns the index of neighbor in e.nbrs and whether it is present;
// when absent, the index is the insertion point.
func (e *ribEntry) find(neighbor ASN) (int, bool) {
	return slices.BinarySearch(e.nbrs, neighbor)
}

func (e *ribEntry) clone() *ribEntry {
	return &ribEntry{
		nbrs:   append([]ASN(nil), e.nbrs...),
		routes: append([]*Route(nil), e.routes...),
		best:   e.best,
	}
}

// NewRIB returns an empty table owned by asn.
func NewRIB(asn ASN) *RIB {
	return &RIB{Owner: asn, entries: make(map[netx.Prefix]*ribEntry)}
}

// NewRIBSized returns an empty table pre-sized for n prefixes — the
// bulk-install constructor the study-format decoder uses so the entry
// map never rehashes during a load.
func NewRIBSized(asn ASN, n int) *RIB {
	return &RIB{Owner: asn, entries: make(map[netx.Prefix]*ribEntry, n)}
}

// SetDecisionDepth truncates the decision process at step s for all future
// selections (ablation support). Zero restores the full process.
func (t *RIB) SetDecisionDepth(s DecisionStep) { t.maxStep = s }

func (t *RIB) depth() DecisionStep {
	if t.maxStep == 0 {
		return StepRouterID
	}
	return t.maxStep
}

// writableEntry returns the entry for prefix, creating it on first use
// and — on a CloneCOW table — copying a still-shared entry before its
// first mutation.
func (t *RIB) writableEntry(prefix netx.Prefix) *ribEntry {
	e := t.entries[prefix]
	if e == nil {
		e = &ribEntry{}
		t.entries[prefix] = e
		t.sorted.Store(nil)
		if t.cow {
			t.owned[prefix] = true
		}
		return e
	}
	if t.cow && !t.owned[prefix] {
		ce := e.clone()
		t.entries[prefix] = ce
		t.owned[prefix] = true
		e = ce
	}
	return e
}

// Upsert installs route (learned from the given neighbor; use the owner
// ASN for locally originated prefixes), replacing any previous route from
// the same neighbor for the same prefix. It returns true when the best
// route for the prefix changed.
func (t *RIB) Upsert(neighbor ASN, route *Route) bool {
	e := t.writableEntry(route.Prefix)
	i, ok := e.find(neighbor)
	if ok {
		e.routes[i] = route
	} else {
		e.nbrs = append(e.nbrs, 0)
		copy(e.nbrs[i+1:], e.nbrs[i:])
		e.nbrs[i] = neighbor
		e.routes = append(e.routes, nil)
		copy(e.routes[i+1:], e.routes[i:])
		e.routes[i] = route
	}
	return t.reselect(e)
}

// Withdraw removes the route for prefix learned from neighbor. It returns
// true when the best route changed (including disappearing).
func (t *RIB) Withdraw(neighbor ASN, prefix netx.Prefix) bool {
	e := t.entries[prefix]
	if e == nil {
		return false
	}
	if _, ok := e.find(neighbor); !ok {
		return false
	}
	e = t.writableEntry(prefix)
	i, _ := e.find(neighbor)
	e.nbrs = append(e.nbrs[:i], e.nbrs[i+1:]...)
	e.routes = append(e.routes[:i], e.routes[i+1:]...)
	if len(e.nbrs) == 0 {
		delete(t.entries, prefix)
		t.sorted.Store(nil)
		return e.best != nil
	}
	return t.reselect(e)
}

// reselect recomputes the entry's best route over the candidates in
// ascending-neighbor order (the deterministic "first wins" tie-break).
func (t *RIB) reselect(e *ribEntry) bool {
	var best *Route
	for _, r := range e.routes {
		if best == nil || Compare(r, best, t.depth()) < 0 {
			best = r
		}
	}
	changed := !routesEqual(best, e.best)
	e.best = best
	return changed
}

func routesEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Prefix == b.Prefix &&
		a.Path.Equal(b.Path) &&
		a.LocalPref == b.LocalPref &&
		a.MED == b.MED &&
		a.Origin == b.Origin &&
		a.FromIBGP == b.FromIBGP &&
		a.IGPMetric == b.IGPMetric &&
		a.RouterID == b.RouterID &&
		len(a.Communities) == len(b.Communities)
}

// InstallConverged replaces prefix's entry wholesale with pre-selected
// state: neighbors must be ascending, routes aligned with them, and best
// the route the decision process would pick (nil only when routes is
// empty, which drops the prefix). The simulator's capture path uses it to
// install converged per-prefix state without re-running selection or
// re-sorting; both slices are copied.
func (t *RIB) InstallConverged(prefix netx.Prefix, neighbors []ASN, routes []*Route, best *Route) {
	if len(neighbors) == 0 {
		t.DropPrefix(prefix)
		return
	}
	e := &ribEntry{
		nbrs:   append([]ASN(nil), neighbors...),
		routes: append([]*Route(nil), routes...),
		best:   best,
	}
	if _, present := t.entries[prefix]; !present {
		t.sorted.Store(nil)
	}
	t.entries[prefix] = e
	if t.cow {
		t.owned[prefix] = true
	}
}

// InstallOwned is InstallConverged without the defensive copies: the
// table takes ownership of both slices, which the caller must not
// reuse or mutate afterwards. It is the bulk-install entry point of
// the study-format decoder, which carves per-prefix subslices out of
// one arena per table — copying them again would double the load-path
// allocation for no benefit.
func (t *RIB) InstallOwned(prefix netx.Prefix, neighbors []ASN, routes []*Route, best *Route) {
	if len(neighbors) == 0 {
		t.DropPrefix(prefix)
		return
	}
	if _, present := t.entries[prefix]; !present {
		t.sorted.Store(nil)
	}
	t.entries[prefix] = &ribEntry{nbrs: neighbors, routes: routes, best: best}
	if t.cow {
		t.owned[prefix] = true
	}
}

// EachEntry calls fn for every prefix with its full entry — aligned
// neighbor/route slices (ascending neighbor) plus the selected best —
// in prefix Compare order. It is the no-copy serialization walk the
// study-format encoder uses; callers must treat the slices as
// read-only.
func (t *RIB) EachEntry(fn func(prefix netx.Prefix, neighbors []ASN, routes []*Route, best *Route)) {
	for _, prefix := range t.Prefixes() {
		e := t.entries[prefix]
		fn(prefix, e.nbrs, e.routes, e.best)
	}
}

// EntrySnapshot is a copied view of one prefix's entry, used by the
// scenario engine's rollback journal to restore a table slice without
// replaying events.
type EntrySnapshot struct {
	Present   bool
	Neighbors []ASN
	Routes    []*Route
	Best      *Route
}

// SnapshotEntry copies prefix's current entry (Present=false when the
// table has no candidates for it).
func (t *RIB) SnapshotEntry(prefix netx.Prefix) EntrySnapshot {
	e := t.entries[prefix]
	if e == nil {
		return EntrySnapshot{}
	}
	return EntrySnapshot{
		Present:   true,
		Neighbors: append([]ASN(nil), e.nbrs...),
		Routes:    append([]*Route(nil), e.routes...),
		Best:      e.best,
	}
}

// RestoreEntry reinstates a snapshot taken with SnapshotEntry.
func (t *RIB) RestoreEntry(prefix netx.Prefix, snap EntrySnapshot) {
	if !snap.Present {
		t.DropPrefix(prefix)
		return
	}
	t.InstallConverged(prefix, snap.Neighbors, snap.Routes, snap.Best)
}

// Clone returns an independent deep copy of the table. Route values are
// shared (the simulator never mutates an installed *Route); the entry
// map and candidate slices are copied, so Upsert/Withdraw/DropPrefix on
// the clone leave the original untouched.
func (t *RIB) Clone() *RIB {
	c := &RIB{Owner: t.Owner, maxStep: t.maxStep,
		entries: make(map[netx.Prefix]*ribEntry, len(t.entries))}
	c.sorted.Store(t.sorted.Load())
	for p, e := range t.entries {
		c.entries[p] = e.clone()
	}
	return c
}

// CloneCOW returns a copy-on-write copy: only the prefix → entry map is
// copied up front; the per-prefix entries stay shared and are copied
// lazily on their first mutation through the clone, so cloning a large
// table to rewrite a handful of prefixes costs O(prefixes) pointers
// instead of a full candidate deep copy. The receiver MUST NOT be
// mutated after CloneCOW (it still references the shared entries); the
// scenario engine enforces this by retiring the source table once any
// clone exists.
func (t *RIB) CloneCOW() *RIB {
	c := &RIB{Owner: t.Owner, maxStep: t.maxStep,
		entries: make(map[netx.Prefix]*ribEntry, len(t.entries)),
		cow:     true, owned: make(map[netx.Prefix]bool)}
	c.sorted.Store(t.sorted.Load())
	for p, e := range t.entries {
		c.entries[p] = e
	}
	return c
}

// DropPrefix removes every candidate for prefix, reporting whether the
// prefix was present. Used when a simulation epoch recomputes a prefix
// from scratch.
func (t *RIB) DropPrefix(prefix netx.Prefix) bool {
	if _, ok := t.entries[prefix]; !ok {
		return false
	}
	delete(t.entries, prefix)
	t.sorted.Store(nil)
	return true
}

// EachCandidate calls fn for every candidate route with the neighbor it
// was learned from (the owner ASN for locally originated prefixes), in
// (prefix Compare order, neighbor ascending) order — the serialization
// walk: NewRIB + Upsert over the emitted triples reconstructs the table.
func (t *RIB) EachCandidate(fn func(prefix netx.Prefix, from ASN, r *Route)) {
	for _, prefix := range t.Prefixes() {
		e := t.entries[prefix]
		for i, n := range e.nbrs {
			fn(prefix, n, e.routes[i])
		}
	}
}

// Has reports whether the table holds any candidate for prefix.
func (t *RIB) Has(prefix netx.Prefix) bool {
	_, ok := t.entries[prefix]
	return ok
}

// Best returns the selected route for prefix, or nil.
func (t *RIB) Best(prefix netx.Prefix) *Route {
	if e := t.entries[prefix]; e != nil {
		return e.best
	}
	return nil
}

// Candidates returns every candidate route for prefix in ascending
// neighbor order (the order IOS would list paths deterministically). The
// returned slice is a copy and safe to hold across mutations.
func (t *RIB) Candidates(prefix netx.Prefix) []*Route {
	e := t.entries[prefix]
	if e == nil {
		return nil
	}
	return append([]*Route(nil), e.routes...)
}

// CandidateFrom returns the candidate learned from the given neighbor.
func (t *RIB) CandidateFrom(prefix netx.Prefix, neighbor ASN) *Route {
	if e := t.entries[prefix]; e != nil {
		if i, ok := e.find(neighbor); ok {
			return e.routes[i]
		}
	}
	return nil
}

// Prefixes returns every prefix with at least one route, in Compare
// order. The slice is cached and invalidated by prefix-set mutations
// (Upsert of a new prefix, Withdraw of a last candidate, DropPrefix,
// InstallConverged), so repeated calls — one per collector peer in
// ViewFromPeerTable — neither allocate nor re-sort. Concurrent readers
// are safe on a quiescent table; treat the result as read-only.
func (t *RIB) Prefixes() []netx.Prefix {
	if cached := t.sorted.Load(); cached != nil {
		return *cached
	}
	out := make([]netx.Prefix, 0, len(t.entries))
	for p := range t.entries {
		out = append(out, p)
	}
	netx.SortPrefixes(out)
	t.sorted.Store(&out)
	return out
}

// Len returns the number of prefixes in the table.
func (t *RIB) Len() int { return len(t.entries) }

// NumRoutes returns the total number of candidate routes across prefixes.
func (t *RIB) NumRoutes() int {
	n := 0
	for _, e := range t.entries {
		n += len(e.routes)
	}
	return n
}

// EachBest calls fn for every (prefix, best route) pair in Compare order.
func (t *RIB) EachBest(fn func(netx.Prefix, *Route)) {
	for _, p := range t.Prefixes() {
		if b := t.entries[p].best; b != nil {
			fn(p, b)
		}
	}
}

// BestRoutes returns all best routes in prefix order. The paper observes
// that best routes suffice for SA-prefix inference; this accessor is what
// the RouteViews-style collector exports.
func (t *RIB) BestRoutes() []*Route {
	out := make([]*Route, 0, len(t.entries))
	t.EachBest(func(_ netx.Prefix, r *Route) { out = append(out, r) })
	return out
}
