package bgp

import (
	"sort"

	"github.com/policyscope/policyscope/internal/netx"
)

// RIB is a routing information base for one AS: for each prefix the set of
// candidate routes (at most one per neighbor AS, as BGP sessions replace
// prior announcements) and the selected best route.
//
// RIB is the unit the paper's analyses read. It intentionally keeps *all*
// candidates, not just the best route, because Looking Glass output
// ("show ip bgp") exposes every path and several analyses need them.
type RIB struct {
	// Owner is the AS whose table this is.
	Owner ASN

	entries map[netx.Prefix]*ribEntry
	// maxStep lets ablations truncate the decision process; zero means
	// the full seven steps.
	maxStep DecisionStep
	// cow marks a CloneCOW table: entries are shared with the source
	// and copied on first mutation; owned tracks the prefixes whose
	// entries this table already owns.
	cow   bool
	owned map[netx.Prefix]bool
}

type ribEntry struct {
	// candidates are keyed by announcing neighbor; locally originated
	// routes use the owner's own ASN as the key.
	candidates map[ASN]*Route
	best       *Route
}

// NewRIB returns an empty table owned by asn.
func NewRIB(asn ASN) *RIB {
	return &RIB{Owner: asn, entries: make(map[netx.Prefix]*ribEntry)}
}

// SetDecisionDepth truncates the decision process at step s for all future
// selections (ablation support). Zero restores the full process.
func (t *RIB) SetDecisionDepth(s DecisionStep) { t.maxStep = s }

func (t *RIB) depth() DecisionStep {
	if t.maxStep == 0 {
		return StepRouterID
	}
	return t.maxStep
}

// writableEntry returns the entry for prefix, creating it on first use
// and — on a CloneCOW table — copying a still-shared entry before its
// first mutation.
func (t *RIB) writableEntry(prefix netx.Prefix) *ribEntry {
	e := t.entries[prefix]
	if e == nil {
		e = &ribEntry{candidates: make(map[ASN]*Route, 4)}
		t.entries[prefix] = e
		if t.cow {
			t.owned[prefix] = true
		}
		return e
	}
	if t.cow && !t.owned[prefix] {
		ce := &ribEntry{candidates: make(map[ASN]*Route, len(e.candidates)+1), best: e.best}
		for n, r := range e.candidates {
			ce.candidates[n] = r
		}
		t.entries[prefix] = ce
		t.owned[prefix] = true
		e = ce
	}
	return e
}

// Upsert installs route (learned from the given neighbor; use the owner
// ASN for locally originated prefixes), replacing any previous route from
// the same neighbor for the same prefix. It returns true when the best
// route for the prefix changed.
func (t *RIB) Upsert(neighbor ASN, route *Route) bool {
	e := t.writableEntry(route.Prefix)
	e.candidates[neighbor] = route
	return t.reselect(route.Prefix, e)
}

// Withdraw removes the route for prefix learned from neighbor. It returns
// true when the best route changed (including disappearing).
func (t *RIB) Withdraw(neighbor ASN, prefix netx.Prefix) bool {
	e := t.entries[prefix]
	if e == nil {
		return false
	}
	if _, ok := e.candidates[neighbor]; !ok {
		return false
	}
	e = t.writableEntry(prefix)
	delete(e.candidates, neighbor)
	if len(e.candidates) == 0 {
		delete(t.entries, prefix)
		return e.best != nil
	}
	return t.reselect(prefix, e)
}

func (t *RIB) reselect(prefix netx.Prefix, e *ribEntry) bool {
	// Deterministic candidate order: neighbors ascending. This makes the
	// "first wins" tie-break reproducible across runs.
	neighbors := make([]ASN, 0, len(e.candidates))
	for n := range e.candidates {
		neighbors = append(neighbors, n)
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	var best *Route
	for _, n := range neighbors {
		r := e.candidates[n]
		if best == nil || Compare(r, best, t.depth()) < 0 {
			best = r
		}
	}
	changed := !routesEqual(best, e.best)
	e.best = best
	return changed
}

func routesEqual(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Prefix == b.Prefix &&
		a.Path.Equal(b.Path) &&
		a.LocalPref == b.LocalPref &&
		a.MED == b.MED &&
		a.Origin == b.Origin &&
		a.FromIBGP == b.FromIBGP &&
		a.IGPMetric == b.IGPMetric &&
		a.RouterID == b.RouterID &&
		len(a.Communities) == len(b.Communities)
}

// Clone returns an independent deep copy of the table. Route values are
// shared (the simulator never mutates an installed *Route); the entry
// and candidate maps are copied, so Upsert/Withdraw/DropPrefix on the
// clone leave the original untouched.
func (t *RIB) Clone() *RIB {
	c := &RIB{Owner: t.Owner, maxStep: t.maxStep,
		entries: make(map[netx.Prefix]*ribEntry, len(t.entries))}
	for p, e := range t.entries {
		ce := &ribEntry{candidates: make(map[ASN]*Route, len(e.candidates)), best: e.best}
		for n, r := range e.candidates {
			ce.candidates[n] = r
		}
		c.entries[p] = ce
	}
	return c
}

// CloneCOW returns a copy-on-write copy: only the prefix → entry map is
// copied up front; the per-prefix entries stay shared and are copied
// lazily on their first mutation through the clone, so cloning a large
// table to rewrite a handful of prefixes costs O(prefixes) pointers
// instead of a full candidate-map deep copy. The receiver MUST NOT be
// mutated after CloneCOW (it still references the shared entries); the
// scenario engine enforces this by retiring the source table once any
// clone exists.
func (t *RIB) CloneCOW() *RIB {
	c := &RIB{Owner: t.Owner, maxStep: t.maxStep,
		entries: make(map[netx.Prefix]*ribEntry, len(t.entries)),
		cow:     true, owned: make(map[netx.Prefix]bool)}
	for p, e := range t.entries {
		c.entries[p] = e
	}
	return c
}

// DropPrefix removes every candidate for prefix, reporting whether the
// prefix was present. Used when a simulation epoch recomputes a prefix
// from scratch.
func (t *RIB) DropPrefix(prefix netx.Prefix) bool {
	if _, ok := t.entries[prefix]; !ok {
		return false
	}
	delete(t.entries, prefix)
	return true
}

// EachCandidate calls fn for every candidate route with the neighbor it
// was learned from (the owner ASN for locally originated prefixes), in
// (prefix Compare order, neighbor ascending) order — the serialization
// walk: NewRIB + Upsert over the emitted triples reconstructs the table.
func (t *RIB) EachCandidate(fn func(prefix netx.Prefix, from ASN, r *Route)) {
	for _, prefix := range t.Prefixes() {
		e := t.entries[prefix]
		neighbors := make([]ASN, 0, len(e.candidates))
		for n := range e.candidates {
			neighbors = append(neighbors, n)
		}
		sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
		for _, n := range neighbors {
			fn(prefix, n, e.candidates[n])
		}
	}
}

// Has reports whether the table holds any candidate for prefix.
func (t *RIB) Has(prefix netx.Prefix) bool {
	_, ok := t.entries[prefix]
	return ok
}

// Best returns the selected route for prefix, or nil.
func (t *RIB) Best(prefix netx.Prefix) *Route {
	if e := t.entries[prefix]; e != nil {
		return e.best
	}
	return nil
}

// Candidates returns every candidate route for prefix in ascending
// neighbor order (the order IOS would list paths deterministically).
func (t *RIB) Candidates(prefix netx.Prefix) []*Route {
	e := t.entries[prefix]
	if e == nil {
		return nil
	}
	neighbors := make([]ASN, 0, len(e.candidates))
	for n := range e.candidates {
		neighbors = append(neighbors, n)
	}
	sort.Slice(neighbors, func(i, j int) bool { return neighbors[i] < neighbors[j] })
	out := make([]*Route, 0, len(neighbors))
	for _, n := range neighbors {
		out = append(out, e.candidates[n])
	}
	return out
}

// CandidateFrom returns the candidate learned from the given neighbor.
func (t *RIB) CandidateFrom(prefix netx.Prefix, neighbor ASN) *Route {
	if e := t.entries[prefix]; e != nil {
		return e.candidates[neighbor]
	}
	return nil
}

// Prefixes returns every prefix with at least one route, in Compare order.
func (t *RIB) Prefixes() []netx.Prefix {
	out := make([]netx.Prefix, 0, len(t.entries))
	for p := range t.entries {
		out = append(out, p)
	}
	netx.SortPrefixes(out)
	return out
}

// Len returns the number of prefixes in the table.
func (t *RIB) Len() int { return len(t.entries) }

// NumRoutes returns the total number of candidate routes across prefixes.
func (t *RIB) NumRoutes() int {
	n := 0
	for _, e := range t.entries {
		n += len(e.candidates)
	}
	return n
}

// EachBest calls fn for every (prefix, best route) pair in Compare order.
func (t *RIB) EachBest(fn func(netx.Prefix, *Route)) {
	for _, p := range t.Prefixes() {
		if b := t.entries[p].best; b != nil {
			fn(p, b)
		}
	}
}

// BestRoutes returns all best routes in prefix order. The paper observes
// that best routes suffice for SA-prefix inference; this accessor is what
// the RouteViews-style collector exports.
func (t *RIB) BestRoutes() []*Route {
	out := make([]*Route, 0, len(t.entries))
	t.EachBest(func(_ netx.Prefix, r *Route) { out = append(out, r) })
	return out
}
