package bgp

import (
	"fmt"

	"github.com/policyscope/policyscope/internal/netx"
)

// Origin is the BGP ORIGIN attribute. Lower values are preferred by step 3
// of the decision process.
type Origin uint8

// Origin attribute values (RFC 4271 §5.1.1).
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "incomplete"
	}
	return fmt.Sprintf("Origin(%d)", uint8(o))
}

// OriginCode returns the single-character code IOS prints ("i", "e", "?").
func (o Origin) OriginCode() byte {
	switch o {
	case OriginIGP:
		return 'i'
	case OriginEGP:
		return 'e'
	default:
		return '?'
	}
}

// DefaultLocalPref is the local preference assigned when import policy does
// not set one (Cisco default).
const DefaultLocalPref = 100

// Route is one path to one prefix as seen in an AS's routing table. It
// bundles the attributes the paper's inference algorithms read: the AS
// path (and hence next-hop AS and origin AS), local preference, MED,
// communities, and the eBGP/iBGP + tie-break attributes that the decision
// process needs.
type Route struct {
	// Prefix is the destination.
	Prefix netx.Prefix
	// Path is the AS path; Path[0] is the next-hop AS, the last element
	// the origin AS. Empty for locally originated prefixes.
	Path Path
	// NextHop is the IP next hop, used only for table rendering.
	NextHop uint32
	// LocalPref ranks routes in step 1 of the decision process. Higher
	// wins.
	LocalPref uint32
	// MED is the multi-exit discriminator; compared (lower wins) only
	// between routes from the same next-hop AS.
	MED uint32
	// Origin is the ORIGIN attribute; lower wins.
	Origin Origin
	// Communities carries the route's community attribute.
	Communities Communities
	// FromIBGP marks routes learned from an internal peer; eBGP routes
	// are preferred at step 5.
	FromIBGP bool
	// IGPMetric is the metric to the egress router, step 6.
	IGPMetric uint32
	// RouterID is the announcing router's ID, the final tie-break.
	RouterID uint32
}

// NextHopAS returns the neighbor AS the route was learned from. ok is false
// for locally originated routes.
func (r *Route) NextHopAS() (ASN, bool) { return r.Path.First() }

// OriginAS returns the AS that originated the prefix. ok is false for
// locally originated routes (the origin is the table owner itself).
func (r *Route) OriginAS() (ASN, bool) { return r.Path.Origin() }

// IsLocal reports whether the route is locally originated (empty AS path).
func (r *Route) IsLocal() bool { return len(r.Path) == 0 }

// Clone returns a deep copy of r.
func (r *Route) Clone() *Route {
	c := *r
	c.Path = r.Path.Clone()
	c.Communities = r.Communities.Clone()
	return &c
}

// String renders a compact single-line description for diagnostics.
func (r *Route) String() string {
	return fmt.Sprintf("%s via [%s] lp=%d med=%d %s", r.Prefix, r.Path, r.LocalPref, r.MED, r.Origin)
}

// Update is a routing message exchanged during propagation: either an
// announcement of a route or a withdrawal of a prefix.
type Update struct {
	// From is the AS sending the update.
	From ASN
	// Withdraw, when true, retracts From's announcement of Prefix.
	Withdraw bool
	// Prefix is the destination being withdrawn (set for withdrawals).
	Prefix netx.Prefix
	// Route is the announced route as it leaves From, i.e. with From
	// already prepended to the path (nil for withdrawals).
	Route *Route
}
