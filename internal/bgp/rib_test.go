package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/policyscope/policyscope/internal/netx"
)

func ribRoute(prefix, path string, lp uint32) *Route {
	r := mkRoute(path, lp)
	r.Prefix = netx.MustParsePrefix(prefix)
	return r
}

func TestRIBUpsertSelectsBest(t *testing.T) {
	rib := NewRIB(7018)
	p := netx.MustParsePrefix("10.0.0.0/8")

	if changed := rib.Upsert(701, ribRoute("10.0.0.0/8", "701 9 100", 90)); !changed {
		t.Fatal("first route must change best")
	}
	// Better localpref from another neighbor takes over.
	if changed := rib.Upsert(1239, ribRoute("10.0.0.0/8", "1239 100", 100)); !changed {
		t.Fatal("better route must change best")
	}
	best := rib.Best(p)
	if best == nil || best.LocalPref != 100 {
		t.Fatalf("best = %v", best)
	}
	// A worse route does not change the best.
	if changed := rib.Upsert(3549, ribRoute("10.0.0.0/8", "3549 9 9 100", 80)); changed {
		t.Fatal("worse route must not change best")
	}
	if rib.Len() != 1 || rib.NumRoutes() != 3 {
		t.Fatalf("Len=%d NumRoutes=%d", rib.Len(), rib.NumRoutes())
	}
}

func TestRIBReplaceFromSameNeighbor(t *testing.T) {
	rib := NewRIB(7018)
	p := netx.MustParsePrefix("10.0.0.0/8")
	rib.Upsert(701, ribRoute("10.0.0.0/8", "701 100", 100))
	// Same neighbor re-announces with lower preference: replaces, best falls
	// back to recomputed winner.
	rib.Upsert(1239, ribRoute("10.0.0.0/8", "1239 5 100", 90))
	changed := rib.Upsert(701, ribRoute("10.0.0.0/8", "701 100", 50))
	if !changed {
		t.Fatal("replacement that demotes the best must report change")
	}
	best := rib.Best(p)
	if nh, _ := best.NextHopAS(); nh != 1239 {
		t.Fatalf("best next hop = %v, want 1239", nh)
	}
	if rib.NumRoutes() != 2 {
		t.Fatalf("NumRoutes = %d, want 2 (replacement, not addition)", rib.NumRoutes())
	}
}

func TestRIBWithdraw(t *testing.T) {
	rib := NewRIB(7018)
	p := netx.MustParsePrefix("10.0.0.0/8")
	rib.Upsert(701, ribRoute("10.0.0.0/8", "701 100", 100))
	rib.Upsert(1239, ribRoute("10.0.0.0/8", "1239 100", 90))

	if changed := rib.Withdraw(1239, p); changed {
		t.Fatal("withdrawing a non-best route must not change best")
	}
	if changed := rib.Withdraw(701, p); !changed {
		t.Fatal("withdrawing the best route must change best")
	}
	if rib.Best(p) != nil {
		t.Fatal("prefix must be gone after last withdrawal")
	}
	if rib.Withdraw(701, p) {
		t.Fatal("withdrawing absent route must be a no-op")
	}
	if rib.Withdraw(9999, netx.MustParsePrefix("99.0.0.0/8")) {
		t.Fatal("withdrawing unknown prefix must be a no-op")
	}
	if rib.Len() != 0 {
		t.Fatalf("Len = %d after full withdrawal", rib.Len())
	}
}

func TestRIBCandidatesOrder(t *testing.T) {
	rib := NewRIB(1)
	p := netx.MustParsePrefix("10.0.0.0/8")
	rib.Upsert(300, ribRoute("10.0.0.0/8", "300 9", 100))
	rib.Upsert(100, ribRoute("10.0.0.0/8", "100 9", 100))
	rib.Upsert(200, ribRoute("10.0.0.0/8", "200 9", 100))
	cands := rib.Candidates(p)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	for i, want := range []ASN{100, 200, 300} {
		nh, _ := cands[i].NextHopAS()
		if nh != want {
			t.Fatalf("candidate[%d] from %v, want %v", i, nh, want)
		}
	}
	if got := rib.CandidateFrom(p, 200); got == nil {
		t.Fatal("CandidateFrom missed present route")
	}
	if got := rib.CandidateFrom(p, 999); got != nil {
		t.Fatal("CandidateFrom invented a route")
	}
	if got := rib.Candidates(netx.MustParsePrefix("50.0.0.0/8")); got != nil {
		t.Fatal("Candidates for absent prefix must be nil")
	}
}

func TestRIBDeterministicTieBreak(t *testing.T) {
	// Two completely tied routes: lowest neighbor ASN must win, however
	// insertion order varies.
	build := func(order []ASN) ASN {
		rib := NewRIB(1)
		for _, n := range order {
			r := ribRoute("10.0.0.0/8", "", 100)
			r.Path = Path{n, 500}
			rib.Upsert(n, r)
		}
		nh, _ := rib.Best(netx.MustParsePrefix("10.0.0.0/8")).NextHopAS()
		return nh
	}
	a := build([]ASN{400, 200, 300})
	b := build([]ASN{300, 400, 200})
	if a != b || a != 200 {
		t.Fatalf("tie-break not deterministic: %v vs %v", a, b)
	}
}

func TestRIBPrefixOrderAndEachBest(t *testing.T) {
	rib := NewRIB(1)
	for _, s := range []string{"30.0.0.0/8", "10.0.0.0/8", "20.0.0.0/8"} {
		rib.Upsert(2, ribRoute(s, "2 9", 100))
	}
	ps := rib.Prefixes()
	if len(ps) != 3 || ps[0].String() != "10.0.0.0/8" || ps[2].String() != "30.0.0.0/8" {
		t.Fatalf("prefix order: %v", ps)
	}
	var n int
	rib.EachBest(func(p netx.Prefix, r *Route) {
		if r.Prefix != p {
			t.Fatalf("EachBest mismatch %v vs %v", p, r.Prefix)
		}
		n++
	})
	if n != 3 || len(rib.BestRoutes()) != 3 {
		t.Fatalf("EachBest visited %d", n)
	}
}

func TestRIBDecisionDepthTruncation(t *testing.T) {
	rib := NewRIB(1)
	rib.SetDecisionDepth(StepLocalPref)
	p := netx.MustParsePrefix("10.0.0.0/8")
	// Same localpref, different path lengths. With depth 1 they tie and the
	// lowest-neighbor route wins regardless of path length.
	rib.Upsert(100, ribRoute("10.0.0.0/8", "100 5 5 9", 100))
	rib.Upsert(200, ribRoute("10.0.0.0/8", "200 9", 100))
	nh, _ := rib.Best(p).NextHopAS()
	if nh != 100 {
		t.Fatalf("truncated decision best from %v, want 100", nh)
	}
	rib.SetDecisionDepth(0) // restore full depth
	rib.Upsert(100, ribRoute("10.0.0.0/8", "100 5 5 9", 100))
	nh, _ = rib.Best(p).NextHopAS()
	if nh != 200 {
		t.Fatalf("full decision best from %v, want 200", nh)
	}
}

// TestPropertyRIBBestIsUnbeaten: after arbitrary upsert/withdraw churn the
// selected best route is never strictly beaten by a remaining candidate.
func TestPropertyRIBBestIsUnbeaten(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	prefixes := []netx.Prefix{
		netx.MustParsePrefix("10.0.0.0/8"),
		netx.MustParsePrefix("20.0.0.0/8"),
	}
	f := func() bool {
		rib := NewRIB(1)
		for i := 0; i < 80; i++ {
			p := prefixes[r.Intn(len(prefixes))]
			n := ASN(1 + r.Intn(6))
			if r.Intn(4) == 0 {
				rib.Withdraw(n, p)
				continue
			}
			rt := randRoute(r)
			rt.Prefix = p
			rt.Path = append(Path{n}, rt.Path...)
			rib.Upsert(n, rt)
		}
		for _, p := range rib.Prefixes() {
			best := rib.Best(p)
			if best == nil {
				return false // entry without best must have been deleted
			}
			for _, c := range rib.Candidates(p) {
				if Compare7(c, best) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteAccessors(t *testing.T) {
	r := ribRoute("10.0.0.0/8", "701 1239 7018", 100)
	if nh, ok := r.NextHopAS(); !ok || nh != 701 {
		t.Fatalf("NextHopAS = %v, %v", nh, ok)
	}
	if o, ok := r.OriginAS(); !ok || o != 7018 {
		t.Fatalf("OriginAS = %v, %v", o, ok)
	}
	if r.IsLocal() {
		t.Fatal("route with path reported local")
	}
	local := &Route{Prefix: netx.MustParsePrefix("10.0.0.0/8")}
	if !local.IsLocal() {
		t.Fatal("empty-path route must be local")
	}
	c := r.Clone()
	c.Path[0] = 9
	if r.Path[0] == 9 {
		t.Fatal("Clone shares path storage")
	}
	if r.String() == "" {
		t.Fatal("String must be non-empty")
	}
}
