package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/policyscope/policyscope/internal/netx"
)

func mkRoute(pathStr string, lp uint32) *Route {
	p, err := ParsePath(pathStr)
	if err != nil {
		panic(err)
	}
	return &Route{
		Prefix:    netx.MustParsePrefix("10.0.0.0/8"),
		Path:      p,
		LocalPref: lp,
	}
}

func TestDecisionLocalPrefDominates(t *testing.T) {
	// A longer path with higher local preference must win: the paper's
	// core observation is that localpref overrides shortest-path.
	long := mkRoute("1 2 3 4", 200)
	short := mkRoute("5 6", 100)
	if Compare7(long, short) >= 0 {
		t.Fatal("higher localpref must beat shorter path")
	}
	if got := DecidedBy(long, short); got != StepLocalPref {
		t.Fatalf("DecidedBy = %v", got)
	}
}

func TestDecisionPathLength(t *testing.T) {
	a := mkRoute("1 2", 100)
	b := mkRoute("3 4 5", 100)
	if Compare7(a, b) >= 0 {
		t.Fatal("shorter path must win at equal localpref")
	}
	if got := DecidedBy(a, b); got != StepASPathLen {
		t.Fatalf("DecidedBy = %v", got)
	}
}

func TestDecisionOrigin(t *testing.T) {
	a := mkRoute("1 2", 100)
	b := mkRoute("3 4", 100)
	a.Origin = OriginIGP
	b.Origin = OriginIncomplete
	if Compare7(a, b) >= 0 {
		t.Fatal("IGP origin must beat incomplete")
	}
	if got := DecidedBy(a, b); got != StepOrigin {
		t.Fatalf("DecidedBy = %v", got)
	}
}

func TestDecisionMEDOnlySameNeighbor(t *testing.T) {
	sameA := mkRoute("7 2", 100)
	sameB := mkRoute("7 3", 100)
	sameA.MED = 10
	sameB.MED = 5
	if Compare7(sameB, sameA) >= 0 {
		t.Fatal("lower MED from same neighbor must win")
	}
	diffA := mkRoute("7 2", 100)
	diffB := mkRoute("8 3", 100)
	diffA.MED = 10
	diffB.MED = 5
	if got := DecidedBy(diffA, diffB); got == StepMED {
		t.Fatal("MED must not be compared across different next-hop ASes")
	}
}

func TestDecisionEBGPOverIBGP(t *testing.T) {
	e := mkRoute("1 2", 100)
	i := mkRoute("3 4", 100)
	i.FromIBGP = true
	if Compare7(e, i) >= 0 {
		t.Fatal("eBGP must beat iBGP")
	}
	if got := DecidedBy(e, i); got != StepEBGP {
		t.Fatalf("DecidedBy = %v", got)
	}
}

func TestDecisionIGPMetricAndRouterID(t *testing.T) {
	a := mkRoute("1 2", 100)
	b := mkRoute("3 4", 100)
	a.IGPMetric, b.IGPMetric = 5, 9
	if Compare7(a, b) >= 0 {
		t.Fatal("lower IGP metric must win")
	}
	b.IGPMetric = 5
	a.RouterID, b.RouterID = 2, 1
	if Compare7(b, a) >= 0 {
		t.Fatal("lower router ID must win")
	}
	a.RouterID = 1
	if Compare7(a, b) != 0 {
		t.Fatal("identical attribute routes must tie")
	}
	if DecidedBy(a, b) != 0 {
		t.Fatal("DecidedBy on tie must be 0")
	}
}

func TestDecisionTruncation(t *testing.T) {
	a := mkRoute("1 2", 100)
	b := mkRoute("3 4", 100)
	a.Origin = OriginIGP
	b.Origin = OriginIncomplete
	// Truncated at path length, origin never inspected: tie.
	if got := Compare(a, b, StepASPathLen); got != 0 {
		t.Fatalf("truncated compare = %d, want 0", got)
	}
	if got := Compare(a, b, StepOrigin); got >= 0 {
		t.Fatal("full-depth compare must separate them")
	}
}

func TestBestSelection(t *testing.T) {
	r1 := mkRoute("1 2 3", 100)
	r2 := mkRoute("4 5", 100)
	r3 := mkRoute("6 7 8 9", 300)
	if got := Best7([]*Route{r1, r2, r3}); got != r3 {
		t.Fatalf("Best = %v", got)
	}
	if got := Best7([]*Route{r1, nil, r2}); got != r2 {
		t.Fatalf("Best with nil entries = %v", got)
	}
	if Best7(nil) != nil {
		t.Fatal("Best(empty) must be nil")
	}
	// First wins on complete tie.
	t1 := mkRoute("1 2", 100)
	t2 := mkRoute("3 4", 100)
	if got := Best7([]*Route{t1, t2}); got != t1 {
		t.Fatal("first candidate must win a complete tie")
	}
}

func randRoute(r *rand.Rand) *Route {
	n := 1 + r.Intn(4)
	path := make(Path, n)
	for i := range path {
		path[i] = ASN(1 + r.Intn(8))
	}
	return &Route{
		Prefix:    netx.MustParsePrefix("10.0.0.0/8"),
		Path:      path,
		LocalPref: uint32(80 + 10*r.Intn(3)),
		MED:       uint32(r.Intn(3)),
		Origin:    Origin(r.Intn(3)),
		FromIBGP:  r.Intn(2) == 0,
		IGPMetric: uint32(r.Intn(3)),
		RouterID:  uint32(r.Intn(3)),
	}
}

// TestPropertyDecisionIsConsistent verifies antisymmetry of Compare and the
// deterministic-MED invariant of Best: the selection is never beaten by a
// candidate from its own next-hop-AS group (where MED is comparable), nor
// by another group's winner.
func TestPropertyDecisionIsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		a, b := randRoute(r), randRoute(r)
		if Compare7(a, b) != -Compare7(b, a) {
			return false
		}
		cands := make([]*Route, 3+r.Intn(5))
		for i := range cands {
			cands[i] = randRoute(r)
		}
		best := Best7(cands)
		bestNbr, _ := best.NextHopAS()
		groupWinner := map[ASN]*Route{}
		for _, c := range cands {
			nbr, _ := c.NextHopAS()
			if w, ok := groupWinner[nbr]; !ok || Compare7(c, w) < 0 {
				groupWinner[nbr] = c
			}
		}
		for nbr, w := range groupWinner {
			if nbr == bestNbr {
				if Compare7(w, best) < 0 {
					return false // beaten within its own MED group
				}
			} else if Compare7(w, best) < 0 {
				return false // beaten by another group's winner
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBestDeterministicMED pins the textbook MED-non-transitivity triangle
// and checks Best resolves it the deterministic-MED way regardless of
// input order.
func TestBestDeterministicMED(t *testing.T) {
	mk := func(nbr ASN, med, igp uint32) *Route {
		rt := mkRoute("", 100)
		rt.Path = Path{nbr, 900}
		rt.MED = med
		rt.IGPMetric = igp
		return rt
	}
	x := mk(1, 0, 5) // same group as z, lower MED
	y := mk(2, 1, 3)
	z := mk(1, 1, 1) // beaten by x on MED despite best IGP metric
	want := Best7([]*Route{x, y, z})
	// Within group 1, x wins (MED). Across winners {x, y}: IGP 3 < 5 → y.
	if nh, _ := want.NextHopAS(); nh != 2 {
		t.Fatalf("deterministic-MED winner from %v, want 2", nh)
	}
	for _, perm := range [][]*Route{{z, y, x}, {y, x, z}, {z, x, y}} {
		if got := Best7(perm); got != want {
			t.Fatalf("Best is order-dependent: %v vs %v", got, want)
		}
	}
}

func TestStepString(t *testing.T) {
	steps := map[DecisionStep]string{
		StepLocalPref:    "local-preference",
		StepASPathLen:    "as-path-length",
		StepOrigin:       "origin",
		StepMED:          "med",
		StepEBGP:         "ebgp-over-ibgp",
		StepIGPMetric:    "igp-metric",
		StepRouterID:     "router-id",
		DecisionStep(99): "unknown-step",
	}
	for s, want := range steps {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "IGP" || OriginEGP.String() != "EGP" || OriginIncomplete.String() != "incomplete" {
		t.Fatal("origin names wrong")
	}
	if Origin(9).String() != "Origin(9)" {
		t.Fatal("unknown origin formatting wrong")
	}
	if OriginIGP.OriginCode() != 'i' || OriginEGP.OriginCode() != 'e' || OriginIncomplete.OriginCode() != '?' {
		t.Fatal("origin codes wrong")
	}
}
