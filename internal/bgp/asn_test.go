package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestASNString(t *testing.T) {
	if got := ASN(7018).String(); got != "AS7018" {
		t.Fatalf("ASN.String = %q", got)
	}
}

func TestPathBasics(t *testing.T) {
	p, err := ParsePath("701 1239 7018")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if first, ok := p.First(); !ok || first != 701 {
		t.Fatalf("First = %v, %v", first, ok)
	}
	if origin, ok := p.Origin(); !ok || origin != 7018 {
		t.Fatalf("Origin = %v, %v", origin, ok)
	}
	if !p.Contains(1239) || p.Contains(9999) {
		t.Fatal("Contains misbehaved")
	}
	if p.String() != "701 1239 7018" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPathEmpty(t *testing.T) {
	p, err := ParsePath("   ")
	if err != nil || p != nil {
		t.Fatalf("ParsePath(blank) = %v, %v", p, err)
	}
	if _, ok := p.First(); ok {
		t.Fatal("First on empty path must fail")
	}
	if _, ok := p.Origin(); ok {
		t.Fatal("Origin on empty path must fail")
	}
	if p.Len() != 0 {
		t.Fatal("empty path has nonzero length")
	}
	if p.Clone() != nil {
		t.Fatal("Clone(nil) must be nil")
	}
}

func TestPathParseErrors(t *testing.T) {
	for _, s := range []string{"70x18", "701 -5", "701 99999999999999"} {
		if _, err := ParsePath(s); err == nil {
			t.Errorf("ParsePath(%q) succeeded, want error", s)
		}
	}
}

func TestPathPrepend(t *testing.T) {
	base, _ := ParsePath("1239 7018")
	p := base.Prepend(701, 3)
	if p.String() != "701 701 701 1239 7018" {
		t.Fatalf("Prepend x3 = %q", p.String())
	}
	if base.String() != "1239 7018" {
		t.Fatal("Prepend mutated the receiver")
	}
	if got := base.Prepend(5, 0); got.Len() != 3 {
		t.Fatalf("Prepend(n=0) must clamp to 1, got %v", got)
	}
}

func TestPathEqualAndClone(t *testing.T) {
	a, _ := ParsePath("1 2 3")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = 9
	if a.Equal(b) || a[0] == 9 {
		t.Fatal("clone shares backing array")
	}
	c, _ := ParsePath("1 2")
	if a.Equal(c) {
		t.Fatal("different lengths equal")
	}
}

func TestPropertyPathRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func() bool {
		n := r.Intn(8)
		p := make(Path, n)
		for i := range p {
			p[i] = ASN(r.Intn(65536))
		}
		q, err := ParsePath(p.String())
		if err != nil {
			return false
		}
		if n == 0 {
			return q == nil
		}
		return q.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
