package bgp

import "sync"

// Intern is an engine-level table of canonical Communities sets and AS
// paths, shared by the convergence engine's workers, the study-cache
// decoder, and the cache encoder. Interning collapses the many
// structurally-identical attribute values a converged Internet produces
// (every customer of AS x carries the same relationship tag set) to one
// allocation, and — because the same table is threaded from decode
// through simulation — a cache hit materializes state the engine's
// equality fast paths (pointer/len comparisons) already recognize.
//
// Ownership rule: a value handed to an Intern (or returned by one) is
// immutable from that point on. Callers must never append to or modify
// an interned Communities or Path in place; derive a new value (e.g.
// Communities.Add, Path.Prepend) and intern that instead.
//
// All methods are safe for concurrent use and safe on a nil receiver
// (nil = no interning: lookups miss, stores return the input).
type Intern struct {
	mu    sync.RWMutex
	comms map[string]Communities
	paths map[string]Path
}

// NewIntern returns an empty intern table.
func NewIntern() *Intern {
	return &Intern{
		comms: make(map[string]Communities),
		paths: make(map[string]Path),
	}
}

// AppendCommunitiesKey appends the canonical byte key of cs to dst and
// returns the extended slice. The key is 4 little-endian bytes per
// member in set (sorted) order — the shared key derivation the worker
// L1 caches, the Intern table, and the study-format encoder all use, so
// a set keyed at one layer hits at every other.
func AppendCommunitiesKey(dst []byte, cs Communities) []byte {
	for _, c := range cs {
		dst = append(dst, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return dst
}

// AppendPathKey appends the canonical byte key of p to dst (4
// little-endian bytes per hop) and returns the extended slice.
func AppendPathKey(dst []byte, p Path) []byte {
	for _, a := range p {
		dst = append(dst, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	return dst
}

// LookupCommunities returns the canonical set for key, if present.
func (in *Intern) LookupCommunities(key []byte) (Communities, bool) {
	if in == nil {
		return nil, false
	}
	in.mu.RLock()
	cs, ok := in.comms[string(key)]
	in.mu.RUnlock()
	return cs, ok
}

// InternCommunities stores cs as the canonical set for key unless one
// exists, and returns the canonical value (first writer wins, so every
// caller converges on one allocation). cs must already be normalized
// (sorted, deduplicated) and must match key.
func (in *Intern) InternCommunities(key []byte, cs Communities) Communities {
	if in == nil {
		return cs
	}
	in.mu.Lock()
	if prev, ok := in.comms[string(key)]; ok {
		in.mu.Unlock()
		return prev
	}
	in.comms[string(key)] = cs
	in.mu.Unlock()
	return cs
}

// LookupPath returns the canonical path for key, if present.
func (in *Intern) LookupPath(key []byte) (Path, bool) {
	if in == nil {
		return nil, false
	}
	in.mu.RLock()
	p, ok := in.paths[string(key)]
	in.mu.RUnlock()
	return p, ok
}

// InternPath stores p as the canonical path for key unless one exists,
// and returns the canonical value. p must match key.
func (in *Intern) InternPath(key []byte, p Path) Path {
	if in == nil {
		return p
	}
	in.mu.Lock()
	if prev, ok := in.paths[string(key)]; ok {
		in.mu.Unlock()
		return prev
	}
	in.paths[string(key)] = p
	in.mu.Unlock()
	return p
}

// Stats reports the table sizes (diagnostics).
func (in *Intern) Stats() (comms, paths int) {
	if in == nil {
		return 0, 0
	}
	in.mu.RLock()
	comms, paths = len(in.comms), len(in.paths)
	in.mu.RUnlock()
	return comms, paths
}
