package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCommunityParts(t *testing.T) {
	c := MakeCommunity(12859, 1000)
	if c.AS() != 12859 || c.Value() != 1000 {
		t.Fatalf("parts = %v:%v", c.AS(), c.Value())
	}
	if c.String() != "12859:1000" {
		t.Fatalf("String = %q", c.String())
	}
	if c.IsWellKnown() {
		t.Fatal("ordinary community reported well-known")
	}
}

func TestWellKnownCommunities(t *testing.T) {
	cases := []struct {
		c    Community
		name string
	}{
		{NoExport, "no-export"},
		{NoAdvertise, "no-advertise"},
		{NoExportSubconfed, "no-export-subconfed"},
	}
	for _, tc := range cases {
		if !tc.c.IsWellKnown() {
			t.Errorf("%v not well-known", tc.c)
		}
		if tc.c.String() != tc.name {
			t.Errorf("String(%v) = %q, want %q", uint32(tc.c), tc.c.String(), tc.name)
		}
		back, err := ParseCommunity(tc.name)
		if err != nil || back != tc.c {
			t.Errorf("ParseCommunity(%q) = %v, %v", tc.name, back, err)
		}
	}
}

func TestParseCommunityErrors(t *testing.T) {
	for _, s := range []string{"", "12859", "70000:1", "1:70000", "a:b", "1:2:3"} {
		if _, err := ParseCommunity(s); err == nil {
			t.Errorf("ParseCommunity(%q) succeeded", s)
		}
	}
}

func TestCommunitiesNormalization(t *testing.T) {
	cs := NewCommunities(MakeCommunity(3, 3), MakeCommunity(1, 1), MakeCommunity(3, 3), MakeCommunity(2, 2))
	if len(cs) != 3 {
		t.Fatalf("dedup failed: %v", cs)
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1] >= cs[i] {
			t.Fatalf("not sorted: %v", cs)
		}
	}
	if !cs.Has(MakeCommunity(2, 2)) || cs.Has(MakeCommunity(9, 9)) {
		t.Fatal("Has misbehaved")
	}
	if NewCommunities() != nil {
		t.Fatal("empty constructor must return nil")
	}
}

func TestCommunitiesAddIsPersistent(t *testing.T) {
	cs := NewCommunities(MakeCommunity(1, 1))
	cs2 := cs.Add(MakeCommunity(2, 2))
	if len(cs) != 1 || len(cs2) != 2 {
		t.Fatalf("Add mutated receiver: %v -> %v", cs, cs2)
	}
	if got := cs2.Add(MakeCommunity(2, 2)); len(got) != 2 {
		t.Fatal("Add of existing value must be a no-op")
	}
}

func TestCommunitiesRoundTrip(t *testing.T) {
	cs := NewCommunities(MakeCommunity(12859, 1000), NoExport, MakeCommunity(1, 2))
	back, err := ParseCommunities(cs.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(cs) {
		t.Fatalf("round trip %v -> %v", cs, back)
	}
	for i := range cs {
		if back[i] != cs[i] {
			t.Fatalf("round trip %v -> %v", cs, back)
		}
	}
	if got, err := ParseCommunities("  "); err != nil || got != nil {
		t.Fatalf("blank parse = %v, %v", got, err)
	}
	if _, err := ParseCommunities("1:1 bad"); err == nil {
		t.Fatal("bad element must error")
	}
}

func TestPropertyCommunitySetInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func() bool {
		n := r.Intn(10)
		vals := make([]Community, n)
		for i := range vals {
			vals[i] = MakeCommunity(ASN(r.Intn(100)), uint16(r.Intn(16)))
		}
		cs := NewCommunities(vals...)
		// Sorted, unique, and contains exactly the input values.
		for i := 1; i < len(cs); i++ {
			if cs[i-1] >= cs[i] {
				return false
			}
		}
		for _, v := range vals {
			if !cs.Has(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
