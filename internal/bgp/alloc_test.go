package bgp

import (
	"testing"

	"github.com/policyscope/policyscope/internal/netx"
)

// Allocation regression tests: the propagation loop's per-hop costs
// must stay allocation-free so the BenchmarkConvergeAllocs win cannot
// silently regress.

func allocRoute(prefix netx.Prefix, nbr ASN, lp uint32) *Route {
	return &Route{Prefix: prefix, Path: Path{nbr, 7018}, LocalPref: lp}
}

// TestCompareAllocFree: the decision-process compare — the innermost
// operation of every reselect — performs zero allocations.
func TestCompareAllocFree(t *testing.T) {
	p := netx.MustParsePrefix("10.0.0.0/24")
	a := allocRoute(p, 701, 100)
	b := allocRoute(p, 1239, 90)
	if avg := testing.AllocsPerRun(1000, func() {
		if Compare(a, b, StepRouterID) == 0 {
			t.Fatal("routes should differ")
		}
	}); avg != 0 {
		t.Fatalf("Compare allocates %.1f per run", avg)
	}
}

// TestRIBUpsertSteadyStateAllocFree: replacing an existing candidate in
// the flat entry store — the dominant RIB write during re-convergence —
// allocates nothing once the entry exists.
func TestRIBUpsertSteadyStateAllocFree(t *testing.T) {
	p := netx.MustParsePrefix("10.0.0.0/24")
	rib := NewRIB(64512)
	r1 := allocRoute(p, 701, 100)
	r2 := allocRoute(p, 1239, 90)
	rib.Upsert(701, r1)
	rib.Upsert(1239, r2)
	if avg := testing.AllocsPerRun(1000, func() {
		rib.Upsert(701, r1)
		rib.Upsert(1239, r2)
	}); avg != 0 {
		t.Fatalf("steady-state Upsert allocates %.1f per run", avg)
	}
}

// TestRIBLookupsAllocFree: the read side (Best, CandidateFrom, cached
// Prefixes) allocates nothing.
func TestRIBLookupsAllocFree(t *testing.T) {
	rib := NewRIB(64512)
	prefixes := []netx.Prefix{
		netx.MustParsePrefix("10.0.0.0/24"),
		netx.MustParsePrefix("10.0.1.0/24"),
		netx.MustParsePrefix("10.0.2.0/24"),
	}
	for _, p := range prefixes {
		rib.Upsert(701, allocRoute(p, 701, 100))
		rib.Upsert(1239, allocRoute(p, 1239, 90))
	}
	rib.Prefixes() // warm the cache
	if avg := testing.AllocsPerRun(1000, func() {
		for _, p := range rib.Prefixes() {
			if rib.Best(p) == nil || rib.CandidateFrom(p, 701) == nil {
				t.Fatal("missing route")
			}
		}
	}); avg != 0 {
		t.Fatalf("warm reads allocate %.1f per run", avg)
	}
}

// TestPrefixesCacheInvalidation: every prefix-set mutation invalidates
// the cached slice; candidate-level mutations keep it.
func TestPrefixesCacheInvalidation(t *testing.T) {
	p1 := netx.MustParsePrefix("10.0.0.0/24")
	p2 := netx.MustParsePrefix("10.0.1.0/24")
	rib := NewRIB(64512)
	rib.Upsert(701, allocRoute(p1, 701, 100))
	if got := rib.Prefixes(); len(got) != 1 || got[0] != p1 {
		t.Fatalf("Prefixes = %v", got)
	}
	// New prefix → visible.
	rib.Upsert(701, allocRoute(p2, 701, 100))
	if got := rib.Prefixes(); len(got) != 2 || got[1] != p2 {
		t.Fatalf("Prefixes after insert = %v", got)
	}
	// Candidate replacement keeps the cache (and its contents).
	before := rib.Prefixes()
	rib.Upsert(701, allocRoute(p2, 701, 120))
	after := rib.Prefixes()
	if len(after) != len(before) {
		t.Fatalf("candidate replacement changed prefix set: %v", after)
	}
	// Withdrawing the last candidate removes the prefix.
	rib.Withdraw(701, p1)
	if got := rib.Prefixes(); len(got) != 1 || got[0] != p2 {
		t.Fatalf("Prefixes after withdraw = %v", got)
	}
	// DropPrefix empties the table.
	rib.DropPrefix(p2)
	if got := rib.Prefixes(); len(got) != 0 {
		t.Fatalf("Prefixes after drop = %v", got)
	}
	// InstallConverged introduces prefixes too.
	r := allocRoute(p1, 701, 100)
	rib.InstallConverged(p1, []ASN{701}, []*Route{r}, r)
	if got := rib.Prefixes(); len(got) != 1 || got[0] != p1 {
		t.Fatalf("Prefixes after install = %v", got)
	}
}

// TestPrefixesCacheCOWSafety: COW clones share the cached slice until
// they mutate their own prefix set; a clone's rebuild never leaks into
// the source or into sibling clones.
func TestPrefixesCacheCOWSafety(t *testing.T) {
	p1 := netx.MustParsePrefix("10.0.0.0/24")
	p2 := netx.MustParsePrefix("10.0.1.0/24")
	p3 := netx.MustParsePrefix("10.0.2.0/24")
	src := NewRIB(64512)
	src.Upsert(701, allocRoute(p1, 701, 100))
	src.Upsert(701, allocRoute(p2, 701, 100))
	srcView := src.Prefixes() // warmed, shared into clones

	a := src.CloneCOW()
	b := src.CloneCOW()
	if got := a.Prefixes(); len(got) != 2 {
		t.Fatalf("clone a Prefixes = %v", got)
	}
	// a grows a prefix: only a sees it.
	a.Upsert(701, allocRoute(p3, 701, 100))
	if got := a.Prefixes(); len(got) != 3 {
		t.Fatalf("clone a after insert = %v", got)
	}
	if got := b.Prefixes(); len(got) != 2 {
		t.Fatalf("sibling clone polluted: %v", got)
	}
	if len(srcView) != 2 || srcView[0] != p1 || srcView[1] != p2 {
		t.Fatalf("source's cached slice mutated: %v", srcView)
	}
	// b drops a prefix: a and the source are unaffected.
	b.DropPrefix(p1)
	if got := b.Prefixes(); len(got) != 1 || got[0] != p2 {
		t.Fatalf("clone b after drop = %v", got)
	}
	if got := a.Prefixes(); len(got) != 3 {
		t.Fatalf("clone a polluted by sibling: %v", got)
	}
}
