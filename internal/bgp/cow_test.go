package bgp

import (
	"testing"

	"github.com/policyscope/policyscope/internal/netx"
)

func cowPrefix(t *testing.T, s string) netx.Prefix {
	t.Helper()
	p, err := netx.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func cowRoute(prefix netx.Prefix, lp uint32) *Route {
	return &Route{Prefix: prefix, LocalPref: lp, Path: Path{100, 200}}
}

// TestCloneCOWIsolation: mutations through a COW clone never reach the
// source table or sibling clones, across Upsert, Withdraw and
// DropPrefix.
func TestCloneCOWIsolation(t *testing.T) {
	p1 := cowPrefix(t, "10.0.0.0/24")
	p2 := cowPrefix(t, "10.0.1.0/24")
	src := NewRIB(64512)
	src.Upsert(1, cowRoute(p1, 100))
	src.Upsert(2, cowRoute(p1, 200))
	src.Upsert(1, cowRoute(p2, 100))

	a := src.CloneCOW()
	b := src.CloneCOW()

	// Mutate p1 through a: replace one candidate, withdraw the other.
	a.Upsert(1, cowRoute(p1, 999))
	a.Withdraw(2, p1)
	// Drop p2 through b.
	b.DropPrefix(p2)
	// New prefix through b.
	p3 := cowPrefix(t, "10.0.2.0/24")
	b.Upsert(3, cowRoute(p3, 50))

	// Source unchanged.
	if got := len(src.Candidates(p1)); got != 2 {
		t.Fatalf("source p1 candidates = %d", got)
	}
	if src.Best(p1).LocalPref != 200 {
		t.Fatalf("source p1 best = %+v", src.Best(p1))
	}
	if !src.Has(p2) || src.Has(p3) {
		t.Fatal("source prefix set changed")
	}
	// a sees its own edits only.
	if got := len(a.Candidates(p1)); got != 1 || a.Best(p1).LocalPref != 999 {
		t.Fatalf("clone a p1: %d candidates, best %+v", got, a.Best(p1))
	}
	if !a.Has(p2) {
		t.Fatal("clone a lost p2")
	}
	// b sees its own edits only.
	if b.Has(p2) || !b.Has(p3) {
		t.Fatal("clone b prefix set wrong")
	}
	if got := len(b.Candidates(p1)); got != 2 {
		t.Fatalf("clone b p1 candidates = %d", got)
	}
	// Chained COW: a clone of a (post-edit) keeps a's view.
	c := a.CloneCOW()
	a2 := a.CloneCOW() // a is retired now; c and a2 share its entries
	c.Upsert(7, cowRoute(p1, 1))
	if got := len(a2.Candidates(p1)); got != 1 || a2.Best(p1).LocalPref != 999 {
		t.Fatalf("sibling clone polluted: %d candidates, best %+v", got, a2.Best(p1))
	}
}
