// Package profiling wires the standard pprof file profiles into the
// CLIs (-cpuprofile / -memprofile on cmd/repro and cmd/sweep), so
// performance work profiles the real binaries under their real
// workloads instead of ad-hoc benchmark harnesses.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// MustStart is the CLI bootstrap: it starts profiling when either path
// is set and reports setup failures through fail (expected to exit).
// The returned stop is always non-nil and safe to call multiple times —
// a no-op when both paths are empty — so mains can install it
// unconditionally into their error-exit hook and defer it.
func MustStart(cpuPath, memPath string, fail func(error)) (stop func()) {
	if cpuPath == "" && memPath == "" {
		return func() {}
	}
	stop, err := Start(cpuPath, memPath)
	if err != nil {
		fail(err)
	}
	return stop
}

// Start begins CPU profiling into cpuPath (when non-empty) and arms a
// heap snapshot into memPath (when non-empty). The returned stop
// function flushes both and is safe to call multiple times; callers
// must invoke it on every exit path (including error exits) or the
// profiles are truncated.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: closing cpu profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			runtime.GC() // materialize up-to-date heap stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: writing heap profile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
