package lookingglass

import (
	"bytes"
	"strings"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

func buildRIB(t *testing.T) *bgp.RIB {
	t.Helper()
	rib := bgp.NewRIB(12859)
	mk := func(prefix, path string, lp, med uint32, comms ...bgp.Community) *bgp.Route {
		p, err := bgp.ParsePath(path)
		if err != nil {
			t.Fatal(err)
		}
		return &bgp.Route{
			Prefix:      netx.MustParsePrefix(prefix),
			Path:        p,
			NextHop:     0xC1943065, // 193.148.48.101
			LocalPref:   lp,
			MED:         med,
			Origin:      bgp.OriginIGP,
			Communities: bgp.NewCommunities(comms...),
		}
	}
	rib.Upsert(8220, mk("80.96.180.0/24", "8220 12878 5606 15471", 210, 5, bgp.MakeCommunity(12859, 1000)))
	rib.Upsert(701, mk("80.96.180.0/24", "701 5606 15471", 90, 0))
	rib.Upsert(701, mk("20.0.0.0/16", "701 7018", 80, 0))
	// A locally originated prefix.
	rib.Upsert(12859, &bgp.Route{
		Prefix:    netx.MustParsePrefix("62.1.0.0/19"),
		LocalPref: 1 << 20,
		NextHop:   0,
		Origin:    bgp.OriginIGP,
	})
	return rib
}

func TestRenderAndParseTable(t *testing.T) {
	rib := buildRIB(t)
	var buf bytes.Buffer
	if err := RenderTable(&buf, rib, 0x0A010101); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "local router ID is 10.1.1.1") {
		t.Fatalf("banner missing:\n%s", text)
	}
	if !strings.Contains(text, "*> 80.96.180.0/24") {
		t.Fatalf("best marker missing:\n%s", text)
	}

	lines, err := ParseTable(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 4 {
		t.Fatalf("parsed %d lines, want 4:\n%s", len(lines), text)
	}
	// Group by prefix and compare against the RIB.
	byPrefix := map[netx.Prefix][]TableLine{}
	for _, l := range lines {
		byPrefix[l.Route.Prefix] = append(byPrefix[l.Route.Prefix], l)
	}
	target := netx.MustParsePrefix("80.96.180.0/24")
	got := byPrefix[target]
	if len(got) != 2 {
		t.Fatalf("candidates for %v: %d", target, len(got))
	}
	if !got[0].Best || got[1].Best {
		t.Fatal("best must be listed first and flagged")
	}
	if got[0].Route.LocalPref != 210 || got[0].Route.MED != 5 {
		t.Fatalf("best attrs: %+v", got[0].Route)
	}
	if got[0].Route.Path.String() != "8220 12878 5606 15471" {
		t.Fatalf("best path: %v", got[0].Route.Path)
	}
	// Local route round trip: weight column.
	local := byPrefix[netx.MustParsePrefix("62.1.0.0/19")]
	if len(local) != 1 || local[0].Weight != LocalWeight || len(local[0].Route.Path) != 0 {
		t.Fatalf("local route: %+v", local)
	}
}

func TestParseTableErrors(t *testing.T) {
	bad := []string{
		"*>                  10.0.0.1                0     90      0 701 i\n", // continuation first
		"*> 10.0.0.0/8      10.0.0.1                x     90      0 701 i\n",  // bad metric
		"*> 10.0.0.0/8      10.0.0.1                0     90      0 701 x\n",  // bad origin
		"*> 10.0.0.0/8      10.0.0.1                0     90\n",               // short
		"*> 10.0.0.x/8      10.0.0.1                0     90      0 701 i\n",  // bad prefix
		"*> 10.0.0.0/8      10.0.0.x                0     90      0 701 i\n",  // bad next hop
		"*> 10.0.0.0/8      10.0.0.1                0     90      0\n",        // no origin
		"*> 10.0.0.0/8      10.0.0.1                0     90      0 70x1 i\n", // bad path
	}
	for _, b := range bad {
		if _, err := ParseTable(strings.NewReader(b)); err == nil {
			t.Errorf("ParseTable(%q) succeeded", b)
		}
	}
	// Headers and empty input parse cleanly.
	got, err := ParseTable(strings.NewReader("BGP table version is 1\n\n   Network   Next Hop\n"))
	if err != nil || len(got) != 0 {
		t.Fatalf("headers-only: %v, %v", got, err)
	}
}

func TestRenderAndParseEntry(t *testing.T) {
	rib := buildRIB(t)
	prefix := netx.MustParsePrefix("80.96.180.0/24")
	var buf bytes.Buffer
	if err := RenderEntry(&buf, rib, prefix); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "BGP routing table entry for 80.96.180.0/24") {
		t.Fatalf("entry banner missing:\n%s", text)
	}
	if !strings.Contains(text, "Community: 12859:1000") {
		t.Fatalf("community line missing:\n%s", text)
	}

	paths, err := ParseEntry(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("parsed %d paths, want 2", len(paths))
	}
	var best *EntryPath
	for i := range paths {
		if paths[i].Best {
			best = &paths[i]
		}
	}
	if best == nil {
		t.Fatal("no best path parsed")
	}
	if best.Route.LocalPref != 210 {
		t.Fatalf("best localpref = %d", best.Route.LocalPref)
	}
	if !best.Route.Communities.Has(bgp.MakeCommunity(12859, 1000)) {
		t.Fatalf("communities lost: %v", best.Route.Communities)
	}
	if best.Route.Path.String() != "8220 12878 5606 15471" {
		t.Fatalf("path: %v", best.Route.Path)
	}
}

func TestRenderEntryLocalRoute(t *testing.T) {
	rib := buildRIB(t)
	var buf bytes.Buffer
	if err := RenderEntry(&buf, rib, netx.MustParsePrefix("62.1.0.0/19")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Local") {
		t.Fatalf("local path marker missing:\n%s", buf.String())
	}
	paths, err := ParseEntry(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0].Route.Path) != 0 {
		t.Fatalf("local entry: %+v", paths)
	}
}

func TestRenderEntryMissingPrefix(t *testing.T) {
	rib := buildRIB(t)
	var buf bytes.Buffer
	if err := RenderEntry(&buf, rib, netx.MustParsePrefix("99.0.0.0/8")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "% Network not in table") {
		t.Fatalf("missing-prefix output:\n%s", buf.String())
	}
	paths, err := ParseEntry(strings.NewReader(buf.String()))
	if err != nil || paths != nil {
		t.Fatalf("not-in-table parse: %v, %v", paths, err)
	}
}

func TestServerQueries(t *testing.T) {
	rib := buildRIB(t)
	srv := NewServer(map[bgp.ASN]*bgp.RIB{12859: rib})
	if got := srv.ASes(); len(got) != 1 || got[0] != 12859 {
		t.Fatalf("ASes = %v", got)
	}

	var buf bytes.Buffer
	if err := srv.Query(12859, "show ip bgp", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Network") {
		t.Fatal("table output missing header")
	}

	buf.Reset()
	if err := srv.Query(12859, "show ip bgp 80.96.180.0/24", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Community: 12859:1000") {
		t.Fatal("entry output missing community")
	}

	// Bare-address query resolves by longest match, like IOS.
	buf.Reset()
	if err := srv.Query(12859, "show ip bgp 80.96.180.77", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "80.96.180.0/24") {
		t.Fatalf("longest match failed:\n%s", buf.String())
	}

	// Unknown address falls back to not-in-table.
	buf.Reset()
	if err := srv.Query(12859, "show ip bgp 99.99.99.99", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "% Network not in table") {
		t.Fatal("unknown address must report not in table")
	}

	if err := srv.Query(999, "show ip bgp", &buf); err == nil {
		t.Fatal("unknown AS must fail")
	}
	if err := srv.Query(12859, "show version", &buf); err == nil {
		t.Fatal("unsupported command must fail")
	}
	if err := srv.Query(12859, "show ip bgp not-an-addr", &buf); err == nil {
		t.Fatal("bad argument must fail")
	}
}

func TestParseEntryErrors(t *testing.T) {
	bad := []string{
		"BGP routing table entry for nonsense\n",
		"BGP routing table entry for 10.0.0.0/8\n      Origin IGP, metric 0, localpref 90, best\n", // attrs before path
		"BGP routing table entry for 10.0.0.0/8\n      Community: 1:1\n",
		"BGP routing table entry for 10.0.0.0/8\n  70x 80\n",
	}
	for _, b := range bad {
		if _, err := ParseEntry(strings.NewReader(b)); err == nil {
			t.Errorf("ParseEntry(%q) succeeded", b)
		}
	}
}

func TestTableRoundTripThroughServer(t *testing.T) {
	// Full fidelity check: render → parse → every parsed line matches a
	// candidate in the source RIB.
	rib := buildRIB(t)
	var buf bytes.Buffer
	if err := RenderTable(&buf, rib, 1); err != nil {
		t.Fatal(err)
	}
	lines, err := ParseTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		found := false
		for _, c := range rib.Candidates(l.Route.Prefix) {
			if c.Path.Equal(l.Route.Path) && c.LocalPref == l.Route.LocalPref && c.MED == l.Route.MED {
				found = true
			}
		}
		if !found {
			t.Fatalf("parsed line has no RIB counterpart: %+v", l.Route)
		}
	}
}
