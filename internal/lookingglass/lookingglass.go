// Package lookingglass renders and parses Cisco-IOS-style "show ip bgp"
// output — the format the paper retrieved from 15 Looking Glass servers
// to obtain fine-grained routing information (local preference and BGP
// communities) that RouteViews dumps lack.
//
// Two forms are supported, matching IOS:
//
//	show ip bgp            → the tabular full-table listing
//	show ip bgp <prefix>   → the detailed per-prefix entry (with
//	                         Community lines, as in the paper's appendix)
package lookingglass

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// LocalWeight is the weight IOS assigns to locally originated routes.
const LocalWeight = 32768

// ErrBadFormat wraps parse failures.
var ErrBadFormat = errors.New("lookingglass: bad format")

// TableLine is one parsed line of the tabular listing.
type TableLine struct {
	// Best marks the '>' flag.
	Best bool
	// Internal marks the 'i' status (iBGP-learned).
	Internal bool
	// Weight is the IOS weight column (LocalWeight for local routes).
	Weight int
	// Route carries prefix, next hop, MED (metric), localpref, path and
	// origin.
	Route *bgp.Route
}

// RenderTable renders rib in the tabular "show ip bgp" format. Routes are
// listed per prefix in candidate order with the best route first, the way
// IOS groups paths under one Network stanza.
func RenderTable(w io.Writer, rib *bgp.RIB, routerID uint32) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "BGP table version is 1, local router ID is %s\n", netx.FormatAddr(routerID))
	fmt.Fprintf(bw, "Status codes: s suppressed, d damped, h history, * valid, > best, i - internal\n")
	fmt.Fprintf(bw, "Origin codes: i - IGP, e - EGP, ? - incomplete\n\n")
	fmt.Fprintf(bw, "   Network          Next Hop            Metric LocPrf Weight Path\n")
	for _, prefix := range rib.Prefixes() {
		best := rib.Best(prefix)
		cands := rib.Candidates(prefix)
		// Best first, then the rest in candidate order.
		ordered := make([]*bgp.Route, 0, len(cands))
		if best != nil {
			ordered = append(ordered, best)
		}
		for _, c := range cands {
			if c != best {
				ordered = append(ordered, c)
			}
		}
		for i, r := range ordered {
			flags := "* "
			if r == best {
				flags = "*>"
			}
			net := prefix.String()
			if i > 0 {
				net = "" // continuation line, IOS style
			}
			weight := 0
			if r.IsLocal() {
				weight = LocalWeight
			}
			fmt.Fprintf(bw, "%s %-16s %-19s %6d %6d %6d %s %c\n",
				flags, net, netx.FormatAddr(r.NextHop), r.MED, r.LocalPref, weight,
				r.Path.String(), r.Origin.OriginCode())
		}
	}
	return bw.Flush()
}

// ParseTable parses tabular output produced by RenderTable (or IOS, as
// long as the numeric columns are populated).
func ParseTable(r io.Reader) ([]TableLine, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var (
		out     []TableLine
		current netx.Prefix
		haveCur bool
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || !strings.HasPrefix(line, "*") {
			continue // banner/header lines
		}
		best := strings.HasPrefix(line, "*>")
		rest := strings.TrimLeft(line, "*> sdhi")
		fields := strings.Fields(rest)
		// Layout: [prefix] nexthop metric locprf weight path... origin
		if len(fields) < 4 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadFormat, lineNo, line)
		}
		idx := 0
		if strings.ContainsRune(fields[0], '/') {
			p, err := netx.ParsePrefix(fields[0])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
			}
			current, haveCur = p, true
			idx = 1
		}
		if !haveCur {
			return nil, fmt.Errorf("%w: line %d: continuation before any network", ErrBadFormat, lineNo)
		}
		if len(fields) < idx+4 {
			return nil, fmt.Errorf("%w: line %d: too few columns", ErrBadFormat, lineNo)
		}
		nextHop, err := netx.ParseAddr(fields[idx])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: next hop: %v", ErrBadFormat, lineNo, err)
		}
		med, err := strconv.ParseUint(fields[idx+1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: metric: %v", ErrBadFormat, lineNo, err)
		}
		lp, err := strconv.ParseUint(fields[idx+2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: locprf: %v", ErrBadFormat, lineNo, err)
		}
		weight, err := strconv.Atoi(fields[idx+3])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: weight: %v", ErrBadFormat, lineNo, err)
		}
		pathFields := fields[idx+4:]
		if len(pathFields) == 0 {
			return nil, fmt.Errorf("%w: line %d: missing origin code", ErrBadFormat, lineNo)
		}
		originCode := pathFields[len(pathFields)-1]
		var origin bgp.Origin
		switch originCode {
		case "i":
			origin = bgp.OriginIGP
		case "e":
			origin = bgp.OriginEGP
		case "?":
			origin = bgp.OriginIncomplete
		default:
			return nil, fmt.Errorf("%w: line %d: origin code %q", ErrBadFormat, lineNo, originCode)
		}
		path, err := bgp.ParsePath(strings.Join(pathFields[:len(pathFields)-1], " "))
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
		}
		out = append(out, TableLine{
			Best:   best,
			Weight: weight,
			Route: &bgp.Route{
				Prefix:    current,
				Path:      path,
				NextHop:   nextHop,
				MED:       uint32(med),
				LocalPref: uint32(lp),
				Origin:    origin,
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// EntryPath is one path in a detailed "show ip bgp <prefix>" entry.
type EntryPath struct {
	Route *bgp.Route
	Best  bool
	// FromIP is the announcing session address.
	FromIP uint32
}

// RenderEntry renders the detailed per-prefix form, including the
// Community line the paper's appendix relies on:
//
//	BGP routing table entry for 80.96.180.0/24
//	Paths: (1 available, best #1)
//	  8220 12878 5606 15471
//	    193.148.15.101 from 213.136.31.5
//	      Origin IGP, metric 5, localpref 210, best
//	      Community: 12859:1000
func RenderEntry(w io.Writer, rib *bgp.RIB, prefix netx.Prefix) error {
	cands := rib.Candidates(prefix)
	if len(cands) == 0 {
		_, err := fmt.Fprintf(w, "%% Network not in table\n")
		return err
	}
	best := rib.Best(prefix)
	bestIdx := 0
	for i, c := range cands {
		if c == best {
			bestIdx = i + 1
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "BGP routing table entry for %s\n", prefix)
	fmt.Fprintf(bw, "Paths: (%d available, best #%d)\n", len(cands), bestIdx)
	for _, c := range cands {
		pathStr := c.Path.String()
		if pathStr == "" {
			pathStr = "Local"
		}
		fmt.Fprintf(bw, "  %s\n", pathStr)
		fmt.Fprintf(bw, "    %s from %s\n", netx.FormatAddr(c.NextHop), netx.FormatAddr(c.NextHop))
		attrs := fmt.Sprintf("      Origin %s, metric %d, localpref %d", c.Origin, c.MED, c.LocalPref)
		if c.FromIBGP {
			attrs += ", internal"
		}
		if c == best {
			attrs += ", best"
		}
		fmt.Fprintf(bw, "%s\n", attrs)
		if len(c.Communities) > 0 {
			fmt.Fprintf(bw, "      Community: %s\n", c.Communities)
		}
	}
	return bw.Flush()
}

// ParseEntry parses the detailed form back into paths.
func ParseEntry(r io.Reader) ([]EntryPath, error) {
	sc := bufio.NewScanner(r)
	var (
		out    []EntryPath
		prefix netx.Prefix
		cur    *EntryPath
		lineNo int
	)
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "% Network not in table"):
			return nil, nil
		case strings.HasPrefix(trimmed, "BGP routing table entry for "):
			p, err := netx.ParsePrefix(strings.TrimPrefix(trimmed, "BGP routing table entry for "))
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
			}
			prefix = p
		case strings.HasPrefix(trimmed, "Paths:"):
			// informational
		case strings.HasPrefix(trimmed, "Origin "):
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: attributes before path", ErrBadFormat, lineNo)
			}
			if err := parseAttrLine(trimmed, cur); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
			}
		case strings.HasPrefix(trimmed, "Community: "):
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: community before path", ErrBadFormat, lineNo)
			}
			cs, err := bgp.ParseCommunities(strings.TrimPrefix(trimmed, "Community: "))
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
			}
			cur.Route.Communities = cs
		case strings.Contains(trimmed, " from "):
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: session line before path", ErrBadFormat, lineNo)
			}
			fields := strings.Fields(trimmed)
			ip, err := netx.ParseAddr(fields[0])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
			}
			cur.Route.NextHop = ip
			if len(fields) >= 3 {
				if from, err := netx.ParseAddr(fields[2]); err == nil {
					cur.FromIP = from
				}
			}
		case trimmed == "":
			// blank
		default:
			// A path line: "Local" or a space-separated ASN list.
			flush()
			var path bgp.Path
			if trimmed != "Local" {
				p, err := bgp.ParsePath(trimmed)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
				}
				path = p
			}
			cur = &EntryPath{Route: &bgp.Route{Prefix: prefix, Path: path}}
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseAttrLine(line string, cur *EntryPath) error {
	for _, part := range strings.Split(line, ",") {
		part = strings.TrimSpace(part)
		switch {
		case strings.HasPrefix(part, "Origin "):
			switch strings.TrimPrefix(part, "Origin ") {
			case "IGP":
				cur.Route.Origin = bgp.OriginIGP
			case "EGP":
				cur.Route.Origin = bgp.OriginEGP
			case "incomplete":
				cur.Route.Origin = bgp.OriginIncomplete
			default:
				return fmt.Errorf("unknown origin %q", part)
			}
		case strings.HasPrefix(part, "metric "):
			v, err := strconv.ParseUint(strings.TrimPrefix(part, "metric "), 10, 32)
			if err != nil {
				return err
			}
			cur.Route.MED = uint32(v)
		case strings.HasPrefix(part, "localpref "):
			v, err := strconv.ParseUint(strings.TrimPrefix(part, "localpref "), 10, 32)
			if err != nil {
				return err
			}
			cur.Route.LocalPref = uint32(v)
		case part == "internal":
			cur.Route.FromIBGP = true
		case part == "best":
			cur.Best = true
		}
	}
	return nil
}

// Server answers looking-glass queries against a set of RIBs, playing the
// role of the per-AS Looking Glass servers in the paper's Table 1.
type Server struct {
	ribs map[bgp.ASN]*bgp.RIB
}

// NewServer builds a server over the given tables.
func NewServer(ribs map[bgp.ASN]*bgp.RIB) *Server {
	return &Server{ribs: ribs}
}

// ASes lists the ASes the server can answer for, ascending.
func (s *Server) ASes() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(s.ribs))
	for asn := range s.ribs {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Query executes a limited command set: "show ip bgp" and
// "show ip bgp <prefix>".
func (s *Server) Query(asn bgp.ASN, command string, w io.Writer) error {
	rib, ok := s.ribs[asn]
	if !ok {
		return fmt.Errorf("lookingglass: no table for %v", asn)
	}
	cmd := strings.TrimSpace(command)
	switch {
	case cmd == "show ip bgp":
		return RenderTable(w, rib, uint32(asn))
	case strings.HasPrefix(cmd, "show ip bgp "):
		arg := strings.TrimSpace(strings.TrimPrefix(cmd, "show ip bgp "))
		prefix, err := netx.ParsePrefix(arg)
		if err != nil {
			// Accept a bare address: longest-match lookup like IOS.
			addr, aerr := netx.ParseAddr(arg)
			if aerr != nil {
				return fmt.Errorf("lookingglass: bad argument %q", arg)
			}
			prefix, err = longestMatch(rib, addr)
			if err != nil {
				fmt.Fprintf(w, "%% Network not in table\n")
				return nil
			}
		}
		return RenderEntry(w, rib, prefix)
	default:
		return fmt.Errorf("lookingglass: unsupported command %q", command)
	}
}

func longestMatch(rib *bgp.RIB, addr uint32) (netx.Prefix, error) {
	var (
		best  netx.Prefix
		found bool
	)
	for _, p := range rib.Prefixes() {
		if p.ContainsAddr(addr) && (!found || p.Len > best.Len) {
			best, found = p, true
		}
	}
	if !found {
		return netx.Prefix{}, errors.New("no match")
	}
	return best, nil
}
