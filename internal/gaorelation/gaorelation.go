// Package gaorelation infers AS relationships from observed AS paths, in
// the spirit of Gao (IEEE/ACM ToN 2001), the algorithm the paper uses for
// all of its relationship input ("we choose the one described in [12]").
//
// The inference runs three passes over the path set:
//
//  1. Degree counting: an AS's degree is its number of distinct
//     neighbors across all paths.
//  2. Transit counting: each path is split at its highest-degree AS (the
//     "top provider"); edges on the vantage side record the far AS as
//     provider, edges on the origin side record the near AS as provider.
//  3. Peering refinement: edges adjacent to a path's top provider are
//     peer candidates (selected by the neighbor-degree comparison rule).
//     A candidate edge becomes peer-to-peer when it never appears in the
//     interior of a path (interior edges must be provider-to-customer by
//     the export rules) and its endpoint degrees are within a ratio
//     bound.
//
// Bidirectional transit evidence yields sibling edges, exactly as in
// Gao's refined algorithm, with a smoothing threshold L for tolerating
// misconfigured paths.
package gaorelation

import (
	"sort"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
)

// Options tunes the inference.
type Options struct {
	// L is the misconfiguration-smoothing threshold: transit evidence
	// with count ≤ L in both directions is treated as noise (sibling),
	// matching Gao's refined algorithm. Default 1.
	L int
	// DegreeRatio bounds how dissimilar two ASes' degrees may be for a
	// candidate edge to be accepted as peer-to-peer. Gao's evaluation
	// uses R = 60. Default 60.
	DegreeRatio float64
	// VantagePoints lists the ASes whose tables contributed the paths
	// (the collector's peers). Paths that *start* at their own top
	// provider carry no peering signal; knowing the vantage set lets the
	// algorithm recognize the mutual-announcement signature of two
	// peering vantage ASes (each appears as the other's first hop).
	VantagePoints []bgp.ASN
}

// DefaultOptions returns the published parameterization.
func DefaultOptions() Options { return Options{L: 1, DegreeRatio: 60} }

func (o Options) withDefaults() Options {
	if o.L <= 0 {
		o.L = 1
	}
	if o.DegreeRatio <= 0 {
		o.DegreeRatio = 60
	}
	return o
}

// Inference is the output of Infer.
type Inference struct {
	// Graph is the inferred annotated AS graph.
	Graph *asgraph.Graph
	// Degrees is the observed degree of every AS (Table 1's "degree"
	// column when measured at a collector).
	Degrees map[bgp.ASN]int
}

type edgeKey struct{ a, b bgp.ASN } // a < b

func key(x, y bgp.ASN) edgeKey {
	if x < y {
		return edgeKey{x, y}
	}
	return edgeKey{y, x}
}

// Infer runs the algorithm over the path set. Paths shorter than two
// hops contribute no edges. Prepending (repeated ASNs) is collapsed.
func Infer(paths []bgp.Path, opts Options) *Inference {
	opts = opts.withDefaults()
	cleaned := make([]bgp.Path, 0, len(paths))
	for _, p := range paths {
		if c := collapse(p); len(c) >= 2 {
			cleaned = append(cleaned, c)
		}
	}

	// Pass 1: degrees from distinct neighbor sets.
	neighborSets := make(map[bgp.ASN]map[bgp.ASN]bool)
	addNeighbor := func(a, b bgp.ASN) {
		if neighborSets[a] == nil {
			neighborSets[a] = make(map[bgp.ASN]bool)
		}
		neighborSets[a][b] = true
	}
	for _, p := range cleaned {
		for i := 0; i+1 < len(p); i++ {
			addNeighbor(p[i], p[i+1])
			addNeighbor(p[i+1], p[i])
		}
	}
	degrees := make(map[bgp.ASN]int, len(neighborSets))
	for asn, set := range neighborSets {
		degrees[asn] = len(set)
	}

	// Pass 2 + 3 bookkeeping.
	transit := make(map[edgeKey][2]int) // [0]: lower-ASN side provides; [1]: higher side provides
	candidate := make(map[edgeKey]bool)
	rejected := make(map[edgeKey]bool) // marked not-peering at a top-adjacent position
	interior := make(map[edgeKey]bool)

	addTransit := func(provider, customer bgp.ASN) {
		k := key(provider, customer)
		c := transit[k]
		if provider == k.a {
			c[0]++
		} else {
			c[1]++
		}
		transit[k] = c
	}

	for _, p := range cleaned {
		j := topProviderIndex(p, degrees)
		for i := 0; i+1 < len(p); i++ {
			k := key(p[i], p[i+1])
			if i+1 < j {
				addTransit(p[i+1], p[i]) // vantage side: far AS is provider
				interior[k] = true
			} else if i > j {
				addTransit(p[i], p[i+1]) // origin side: near AS is provider
				interior[k] = true
			} else {
				// Top-adjacent edge: count transit evidence (Gao's
				// algorithm 1 does) but remember it is a peer candidate
				// position.
				if i+1 == j {
					addTransit(p[i+1], p[i])
				} else {
					addTransit(p[i], p[i+1])
				}
			}
		}
		// Candidate selection by the neighbor-degree comparison rule: of
		// the two edges adjacent to the top provider, the one whose outer
		// endpoint has the larger degree may be a peering edge; the other
		// is marked not-peering (Gao's Algorithm 3, phase 2). A single
		// not-peering mark anywhere disqualifies the edge. A path whose
		// first AS is its own top provider carries no signal about that
		// first edge (the vantage could be exporting either a customer or
		// a peer route to the collector), so it marks nothing.
		switch {
		case j == 0:
			// no information
		case j == len(p)-1:
			candidate[key(p[j-1], p[j])] = true
		default:
			if degrees[p[j-1]] > degrees[p[j+1]] {
				candidate[key(p[j-1], p[j])] = true
				rejected[key(p[j], p[j+1])] = true
			} else {
				candidate[key(p[j], p[j+1])] = true
				rejected[key(p[j-1], p[j])] = true
			}
		}
	}

	// Final classification.
	vantage := make(map[bgp.ASN]bool, len(opts.VantagePoints))
	for _, v := range opts.VantagePoints {
		vantage[v] = true
	}
	g := asgraph.New()
	keys := make([]edgeKey, 0, len(transit))
	for k := range transit {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		counts := transit[k]
		ca, cb := counts[0], counts[1] // a provides for b; b provides for a
		if !interior[k] && !rejected[k] && ratioOK(degrees[k.a], degrees[k.b], opts.DegreeRatio) {
			// Peering by the degree-comparison candidacy rule, or by the
			// mutual-announcement signature of two vantage ASes: each is
			// the other's first hop for part of the table, producing
			// transit "evidence" in both directions that interior
			// appearances never corroborate.
			mutualVantage := vantage[k.a] && vantage[k.b] && ca > 0 && cb > 0
			if candidate[k] || mutualVantage {
				mustAdd(g.AddPeer(k.a, k.b))
				continue
			}
		}
		switch {
		case ca > opts.L && cb > opts.L:
			mustAdd(g.AddSibling(k.a, k.b))
		case ca > 0 && cb > 0 && ca <= opts.L && cb <= opts.L:
			mustAdd(g.AddSibling(k.a, k.b))
		case ca > cb:
			mustAdd(g.AddProviderCustomer(k.a, k.b))
		case cb > ca:
			mustAdd(g.AddProviderCustomer(k.b, k.a))
		default: // equal, both > L: mutual evidence
			mustAdd(g.AddSibling(k.a, k.b))
		}
	}
	return &Inference{Graph: g, Degrees: degrees}
}

// collapse removes consecutive duplicates (AS-path prepending).
func collapse(p bgp.Path) bgp.Path {
	if len(p) == 0 {
		return nil
	}
	out := bgp.Path{p[0]}
	for _, a := range p[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// topProviderIndex returns the index of the highest-degree AS (first on
// ties, which biases toward the vantage side as Gao does).
func topProviderIndex(p bgp.Path, degrees map[bgp.ASN]int) int {
	best, bestDeg := 0, -1
	for i, asn := range p {
		if d := degrees[asn]; d > bestDeg {
			best, bestDeg = i, d
		}
	}
	return best
}

func ratioOK(da, db int, r float64) bool {
	if da == 0 || db == 0 {
		return false
	}
	hi, lo := float64(da), float64(db)
	if hi < lo {
		hi, lo = lo, hi
	}
	return hi/lo <= r
}

func mustAdd(err error) {
	if err != nil {
		// Classification assigns each edge exactly once; a conflict is a
		// bug in this package, not bad input.
		panic(err)
	}
}

// Accuracy summarizes agreement between an inferred graph and ground
// truth, the quantity the paper bounds in Section 4.3 / Table 4.
type Accuracy struct {
	// Total is the number of edges present in both graphs.
	Total int
	// Correct counts matching relationship annotations.
	Correct int
	// MissedEdges counts truth edges absent from the inferred graph
	// (unobserved links).
	MissedEdges int
	// SpuriousEdges counts inferred edges absent from the truth.
	SpuriousEdges int
	// Confusion[truth][inferred] counts per-class outcomes.
	Confusion map[asgraph.Relationship]map[asgraph.Relationship]int
}

// Fraction returns Correct/Total, or 0 when nothing was comparable.
func (a Accuracy) Fraction() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.Correct) / float64(a.Total)
}

// Score compares inferred against truth over the edges of both graphs.
func Score(inferred, truth *asgraph.Graph) Accuracy {
	acc := Accuracy{Confusion: make(map[asgraph.Relationship]map[asgraph.Relationship]int)}
	record := func(t, i asgraph.Relationship) {
		if acc.Confusion[t] == nil {
			acc.Confusion[t] = make(map[asgraph.Relationship]int)
		}
		acc.Confusion[t][i]++
	}
	for _, a := range truth.Nodes() {
		for _, b := range truth.Neighbors(a) {
			if b < a {
				continue // visit each edge once
			}
			tRel := truth.Rel(a, b)
			iRel := inferred.Rel(a, b)
			if iRel == asgraph.RelNone {
				acc.MissedEdges++
				continue
			}
			acc.Total++
			record(tRel, iRel)
			if tRel == iRel {
				acc.Correct++
			}
		}
	}
	for _, a := range inferred.Nodes() {
		for _, b := range inferred.Neighbors(a) {
			if b < a {
				continue
			}
			if truth.Rel(a, b) == asgraph.RelNone {
				acc.SpuriousEdges++
			}
		}
	}
	return acc
}
