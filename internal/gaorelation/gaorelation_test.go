package gaorelation

import (
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/simulate"
	"github.com/policyscope/policyscope/internal/topogen"
)

func paths(t *testing.T, specs ...string) []bgp.Path {
	t.Helper()
	out := make([]bgp.Path, 0, len(specs))
	for _, s := range specs {
		p, err := bgp.ParsePath(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func TestInferSimpleHierarchy(t *testing.T) {
	// 10 is a hub provider: many customers (20, 30, 40), each originating
	// routes seen through 10 and directly.
	ps := paths(t,
		"10 20", "10 30", "10 40",
		"10 20 21", "10 30 31",
		"20 21", "30 31",
	)
	inf := Infer(ps, DefaultOptions())
	g := inf.Graph
	if g.Rel(20, 10) != asgraph.RelProvider {
		t.Fatalf("Rel(20,10) = %v, want provider", g.Rel(20, 10))
	}
	if g.Rel(21, 20) != asgraph.RelProvider {
		t.Fatalf("Rel(21,20) = %v, want provider", g.Rel(21, 20))
	}
	if inf.Degrees[10] != 3 {
		t.Fatalf("degree(10) = %d", inf.Degrees[10])
	}
}

func TestInferPeerBetweenComparableTops(t *testing.T) {
	// Two large ASes 10 and 11 with disjoint customer cones exchange
	// routes: the 10-11 edge only ever appears adjacent to the top.
	ps := paths(t,
		"10 11 110", "10 11 111", "10 11 112",
		"11 10 100", "11 10 101", "11 10 102",
		"10 100", "10 101", "10 102",
		"11 110", "11 111", "11 112",
	)
	opts := DefaultOptions()
	opts.VantagePoints = []bgp.ASN{10, 11}
	inf := Infer(ps, opts)
	if got := inf.Graph.Rel(10, 11); got != asgraph.RelPeer {
		t.Fatalf("Rel(10,11) = %v, want peer", got)
	}
	// Customers classified under both.
	if inf.Graph.Rel(110, 11) != asgraph.RelProvider {
		t.Fatalf("Rel(110,11) = %v", inf.Graph.Rel(110, 11))
	}
}

func TestDegreeRatioBlocksPeerForSkewedEdge(t *testing.T) {
	// Big hub 10 with many customers; small AS 50 attached. The 10-50
	// edge is top-adjacent, but the degree ratio forbids peering.
	specs := []string{"10 50 51"}
	for i := 0; i < 20; i++ {
		specs = append(specs, "10 "+itoa(100+i))
	}
	ps := paths(t, specs...)
	opts := DefaultOptions()
	opts.DegreeRatio = 5
	inf := Infer(ps, opts)
	if got := inf.Graph.Rel(50, 10); got != asgraph.RelProvider {
		t.Fatalf("Rel(50,10) = %v, want provider (ratio-blocked peer)", got)
	}
}

func itoa(n int) string {
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestSiblingFromMutualTransit(t *testing.T) {
	// 10 and 11 appear in both provider directions repeatedly with
	// interior evidence both ways: sibling.
	ps := paths(t,
		// 20 is a huge top (high degree) so interior edges are counted.
		"20 10 11 30", "20 10 11 31", "20 10 11 32",
		"20 11 10 40", "20 11 10 41", "20 11 10 42",
		"20 1", "20 2", "20 3", "20 4", "20 5", "20 6", "20 7",
	)
	inf := Infer(ps, DefaultOptions())
	if got := inf.Graph.Rel(10, 11); got != asgraph.RelSibling {
		t.Fatalf("Rel(10,11) = %v, want sibling", got)
	}
}

func TestPrependingCollapsed(t *testing.T) {
	ps := paths(t, "10 10 10 20 20", "10 30")
	inf := Infer(ps, DefaultOptions())
	if inf.Degrees[10] != 2 {
		t.Fatalf("degree(10) = %d, prepending must collapse", inf.Degrees[10])
	}
	if inf.Graph.Rel(10, 10) != asgraph.RelNone {
		t.Fatal("self edge created from prepending")
	}
}

func TestEmptyAndShortPaths(t *testing.T) {
	inf := Infer([]bgp.Path{nil, {42}, {7, 7}}, DefaultOptions())
	if inf.Graph.NumEdges() != 0 {
		t.Fatalf("edges from degenerate paths: %d", inf.Graph.NumEdges())
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.L != 1 || o.DegreeRatio != 60 {
		t.Fatalf("defaults: %+v", o)
	}
	set := Options{L: 3, DegreeRatio: 10}.withDefaults()
	if set.L != 3 || set.DegreeRatio != 10 {
		t.Fatalf("explicit options overridden: %+v", set)
	}
}

// TestEndToEndAccuracy is the package's headline test: infer
// relationships from simulated vantage tables and score against the
// generator's ground truth. The paper's Section 4.3 finds 94–99.6% of
// relationships correctly inferred; we demand ≥90% on edges observed.
func TestEndToEndAccuracy(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(300, 77))
	if err != nil {
		t.Fatal(err)
	}
	// Vantage: all tier-1s plus a spread of tier-2s, like RouteViews'
	// peer set.
	vantage := append(topo.ASesByTier(1), topo.ASesByTier(2)[:10]...)
	res, err := simulate.Run(topo, simulate.Options{VantagePoints: vantage})
	if err != nil {
		t.Fatal(err)
	}
	var ps []bgp.Path
	for _, asn := range vantage {
		rib := res.Tables[asn]
		for _, prefix := range rib.Prefixes() {
			for _, r := range rib.Candidates(prefix) {
				if len(r.Path) >= 2 {
					ps = append(ps, r.Path)
				}
			}
		}
	}
	if len(ps) == 0 {
		t.Fatal("no paths collected")
	}
	opts := DefaultOptions()
	opts.VantagePoints = vantage
	inf := Infer(ps, opts)
	acc := Score(inf.Graph, topo.Graph)
	if acc.Total == 0 {
		t.Fatal("no comparable edges")
	}
	if f := acc.Fraction(); f < 0.90 {
		t.Fatalf("accuracy %.3f below 0.90 (total %d, correct %d, confusion %v)",
			f, acc.Total, acc.Correct, acc.Confusion)
	}
	if acc.SpuriousEdges > acc.Total/10 {
		t.Fatalf("too many spurious edges: %d of %d", acc.SpuriousEdges, acc.Total)
	}
}

func TestScoreBookkeeping(t *testing.T) {
	truth := asgraph.New()
	if err := truth.AddProviderCustomer(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := truth.AddPeer(2, 3); err != nil {
		t.Fatal(err)
	}
	inferred := asgraph.New()
	if err := inferred.AddProviderCustomer(1, 2); err != nil { // correct
		t.Fatal(err)
	}
	if err := inferred.AddProviderCustomer(2, 3); err != nil { // wrong class
		t.Fatal(err)
	}
	if err := inferred.AddPeer(4, 5); err != nil { // spurious
		t.Fatal(err)
	}
	acc := Score(inferred, truth)
	if acc.Total != 2 || acc.Correct != 1 {
		t.Fatalf("total/correct = %d/%d", acc.Total, acc.Correct)
	}
	if acc.SpuriousEdges != 1 {
		t.Fatalf("spurious = %d", acc.SpuriousEdges)
	}
	if acc.Fraction() != 0.5 {
		t.Fatalf("fraction = %v", acc.Fraction())
	}
	empty := Accuracy{}
	if empty.Fraction() != 0 {
		t.Fatal("empty fraction must be 0")
	}
}
