package irr

import (
	"math/rand"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/topogen"
)

// GenOptions controls synthetic IRR generation from a topology's ground
// truth. The knobs model the paper's complaint that "the IRR database may
// not be complete and some part of it can be out-of-date".
type GenOptions struct {
	// Seed drives the staleness/incompleteness draws.
	Seed int64
	// MissingProb is the probability an AS has no aut-num object at all.
	MissingProb float64
	// StaleProb is the probability an object carries a pre-measurement
	// ChangedDate (and possibly outdated rules).
	StaleProb float64
	// NeighborCoverage is the fraction of an AS's neighbors that appear
	// in its import lines (registries are chronically incomplete).
	NeighborCoverage float64
	// NoActionProb is the probability an import line omits the pref
	// action entirely.
	NoActionProb float64
	// FreshDate / StaleDate are the YYYYMMDD dates stamped on fresh and
	// stale objects.
	FreshDate, StaleDate int
}

// DefaultGenOptions mirrors the rough health of the 2002 RADB snapshot.
func DefaultGenOptions(seed int64) GenOptions {
	return GenOptions{
		Seed:             seed,
		MissingProb:      0.25,
		StaleProb:        0.20,
		NeighborCoverage: 0.85,
		NoActionProb:     0.10,
		FreshDate:        20021015,
		StaleDate:        20010312,
	}
}

// prefBase converts BGP local preference to RPSL pref. RPSL prefers
// smaller values, so pref = prefBase − localpref keeps the semantics
// while inverting the ordering.
const prefBase = 1000

// PrefFromLocalPref converts a ground-truth local preference to the RPSL
// pref value the generator writes.
func PrefFromLocalPref(lp uint32) int { return prefBase - int(lp) }

// LocalPrefFromPref inverts PrefFromLocalPref.
func LocalPrefFromPref(pref int) uint32 { return uint32(prefBase - pref) }

// Generate builds a synthetic registry from the topology's ground-truth
// import policies.
func Generate(topo *topogen.Topology, opts GenOptions) *Database {
	rng := rand.New(rand.NewSource(opts.Seed))
	db := &Database{}
	for _, asn := range topo.Order {
		if rng.Float64() < opts.MissingProb {
			continue
		}
		info := topo.ASes[asn]
		pol := topo.Policies[asn]
		obj := AutNum{
			ASN:    asn,
			ASName: rpslName(info.Name),
			Descr:  info.Name,
			Source: "RADB",
		}
		stale := rng.Float64() < opts.StaleProb
		if stale {
			obj.ChangedDate = opts.StaleDate
		} else {
			obj.ChangedDate = opts.FreshDate
		}
		for _, nb := range topo.Graph.Neighbors(asn) {
			if rng.Float64() >= opts.NeighborCoverage {
				continue
			}
			rule := ImportRule{From: nb, Pref: -1, Accept: "ANY"}
			if lp, ok := pol.Import.NeighborPref[nb]; ok && rng.Float64() >= opts.NoActionProb {
				rule.Pref = PrefFromLocalPref(lp)
			}
			obj.Imports = append(obj.Imports, rule)
			obj.Exports = append(obj.Exports, ExportRule{To: nb, Announce: asn.String()})
		}
		db.Objects = append(db.Objects, obj)
	}
	return db
}

func rpslName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
			out = append(out, c-'a'+'A')
		case (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-':
			out = append(out, c)
		default:
			out = append(out, '-')
		}
	}
	return string(out)
}

// NeighborsWithPref returns the (neighbor, localpref) pairs recoverable
// from an object's import lines.
func (o *AutNum) NeighborsWithPref() map[bgp.ASN]uint32 {
	out := make(map[bgp.ASN]uint32)
	for _, im := range o.Imports {
		if im.Pref >= 0 {
			out[im.From] = LocalPrefFromPref(im.Pref)
		}
	}
	return out
}
