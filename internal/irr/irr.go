// Package irr models the Internet Routing Registry as the paper uses it:
// RPSL aut-num objects whose import lines carry preference actions
// ("import: from AS2 action pref = 1; accept ANY"). The paper mines these
// for the Table 3 import-policy view, after discarding objects not
// updated during the measurement year.
//
// RPSL "pref" is opposite to BGP local preference: smaller values win
// (the paper's footnote 2).
package irr

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/policyscope/policyscope/internal/bgp"
)

// ErrBadRPSL wraps parse failures.
var ErrBadRPSL = errors.New("irr: bad RPSL")

// ImportRule is one parsed "import:" line.
type ImportRule struct {
	// From is the neighbor AS.
	From bgp.ASN
	// Pref is the RPSL preference (smaller = more preferred); -1 when
	// the line carries no pref action.
	Pref int
	// Accept is the filter expression ("ANY", "AS-FOO", a prefix, ...).
	Accept string
}

// ExportRule is one parsed "export:" line.
type ExportRule struct {
	// To is the neighbor AS.
	To bgp.ASN
	// Announce is the announced object ("ANY", "AS1", ...).
	Announce string
}

// AutNum is one aut-num object.
type AutNum struct {
	ASN     bgp.ASN
	ASName  string
	Descr   string
	Imports []ImportRule
	Exports []ExportRule
	// ChangedDate is the YYYYMMDD date of the last "changed:" attribute;
	// 0 when absent.
	ChangedDate int
	Source      string
}

// Database is a collection of aut-num objects.
type Database struct {
	Objects []AutNum
}

// Get returns the object for asn.
func (db *Database) Get(asn bgp.ASN) (*AutNum, bool) {
	for i := range db.Objects {
		if db.Objects[i].ASN == asn {
			return &db.Objects[i], true
		}
	}
	return nil, false
}

// FilterFresh returns a database containing only objects whose
// ChangedDate is >= minDate — the paper's "discard those ASs which are
// not updated during 2002".
func (db *Database) FilterFresh(minDate int) *Database {
	out := &Database{}
	for _, o := range db.Objects {
		if o.ChangedDate >= minDate {
			out.Objects = append(out.Objects, o)
		}
	}
	return out
}

// WriteTo serializes the database in RPSL, objects separated by blank
// lines, deterministically ordered by ASN.
func (db *Database) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	objs := append([]AutNum(nil), db.Objects...)
	sort.Slice(objs, func(i, j int) bool { return objs[i].ASN < objs[j].ASN })
	var total int64
	write := func(format string, args ...interface{}) error {
		n, err := fmt.Fprintf(bw, format, args...)
		total += int64(n)
		return err
	}
	for i, o := range objs {
		if i > 0 {
			if err := write("\n"); err != nil {
				return total, err
			}
		}
		if err := write("aut-num:     %s\n", o.ASN); err != nil {
			return total, err
		}
		if o.ASName != "" {
			if err := write("as-name:     %s\n", o.ASName); err != nil {
				return total, err
			}
		}
		if o.Descr != "" {
			if err := write("descr:       %s\n", o.Descr); err != nil {
				return total, err
			}
		}
		for _, im := range o.Imports {
			if im.Pref >= 0 {
				if err := write("import:      from %s action pref = %d; accept %s\n", im.From, im.Pref, im.Accept); err != nil {
					return total, err
				}
			} else {
				if err := write("import:      from %s accept %s\n", im.From, im.Accept); err != nil {
					return total, err
				}
			}
		}
		for _, ex := range o.Exports {
			if err := write("export:      to %s announce %s\n", ex.To, ex.Announce); err != nil {
				return total, err
			}
		}
		if o.ChangedDate > 0 {
			if err := write("changed:     noc@%s %d\n", strings.ToLower(o.ASN.String()), o.ChangedDate); err != nil {
				return total, err
			}
		}
		src := o.Source
		if src == "" {
			src = "RADB"
		}
		if err := write("source:      %s\n", src); err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Parse reads an RPSL database. Unknown attributes are preserved only in
// spirit (skipped); comment lines start with '%' or '#'.
func Parse(r io.Reader) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	db := &Database{}
	var cur *AutNum
	lineNo := 0
	flush := func() {
		if cur != nil {
			db.Objects = append(db.Objects, *cur)
			cur = nil
		}
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			flush()
			continue
		}
		if strings.HasPrefix(trimmed, "%") || strings.HasPrefix(trimmed, "#") {
			continue
		}
		colon := strings.IndexByte(trimmed, ':')
		if colon < 0 {
			return nil, fmt.Errorf("%w: line %d: no attribute", ErrBadRPSL, lineNo)
		}
		attr := strings.ToLower(strings.TrimSpace(trimmed[:colon]))
		value := strings.TrimSpace(trimmed[colon+1:])
		switch attr {
		case "aut-num":
			flush()
			asn, err := parseASN(value)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadRPSL, lineNo, err)
			}
			cur = &AutNum{ASN: asn}
		case "as-name":
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: attribute outside object", ErrBadRPSL, lineNo)
			}
			cur.ASName = value
		case "descr":
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: attribute outside object", ErrBadRPSL, lineNo)
			}
			cur.Descr = value
		case "import":
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: attribute outside object", ErrBadRPSL, lineNo)
			}
			rule, err := parseImport(value)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadRPSL, lineNo, err)
			}
			cur.Imports = append(cur.Imports, rule)
		case "export":
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: attribute outside object", ErrBadRPSL, lineNo)
			}
			rule, err := parseExport(value)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadRPSL, lineNo, err)
			}
			cur.Exports = append(cur.Exports, rule)
		case "changed":
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: attribute outside object", ErrBadRPSL, lineNo)
			}
			fields := strings.Fields(value)
			if len(fields) > 0 {
				if d, err := strconv.Atoi(fields[len(fields)-1]); err == nil {
					cur.ChangedDate = d
				}
			}
		case "source":
			if cur == nil {
				return nil, fmt.Errorf("%w: line %d: attribute outside object", ErrBadRPSL, lineNo)
			}
			cur.Source = value
		default:
			// Other RPSL attributes (admin-c, tech-c, mnt-by, ...) are
			// irrelevant to the analyses and skipped.
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

func parseASN(s string) (bgp.ASN, error) {
	s = strings.TrimSpace(s)
	if len(s) < 3 || !strings.EqualFold(s[:2], "AS") {
		return 0, fmt.Errorf("bad AS number %q", s)
	}
	n, err := strconv.ParseUint(s[2:], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad AS number %q", s)
	}
	return bgp.ASN(n), nil
}

// parseImport handles "from ASx [action pref = n;] accept FILTER".
func parseImport(value string) (ImportRule, error) {
	rule := ImportRule{Pref: -1}
	rest := strings.TrimSpace(value)
	if !strings.HasPrefix(strings.ToLower(rest), "from ") {
		return rule, fmt.Errorf("import without 'from': %q", value)
	}
	rest = strings.TrimSpace(rest[5:])
	sp := strings.IndexAny(rest, " \t")
	if sp < 0 {
		return rule, fmt.Errorf("import missing filter: %q", value)
	}
	asn, err := parseASN(rest[:sp])
	if err != nil {
		return rule, err
	}
	rule.From = asn
	rest = strings.TrimSpace(rest[sp:])
	if strings.HasPrefix(strings.ToLower(rest), "action") {
		semi := strings.IndexByte(rest, ';')
		if semi < 0 {
			return rule, fmt.Errorf("action without ';': %q", value)
		}
		action := strings.TrimSpace(rest[len("action"):semi])
		rest = strings.TrimSpace(rest[semi+1:])
		// Only the pref action matters to the analyses.
		for _, part := range strings.Split(action, ",") {
			part = strings.TrimSpace(part)
			if strings.HasPrefix(strings.ToLower(part), "pref") {
				eq := strings.IndexByte(part, '=')
				if eq < 0 {
					return rule, fmt.Errorf("pref without value: %q", value)
				}
				v, err := strconv.Atoi(strings.TrimSpace(part[eq+1:]))
				if err != nil {
					return rule, fmt.Errorf("bad pref value: %q", value)
				}
				rule.Pref = v
			}
		}
	}
	if !strings.HasPrefix(strings.ToLower(rest), "accept") {
		return rule, fmt.Errorf("import missing 'accept': %q", value)
	}
	rule.Accept = strings.TrimSpace(rest[len("accept"):])
	if rule.Accept == "" {
		return rule, fmt.Errorf("empty accept filter: %q", value)
	}
	return rule, nil
}

// parseExport handles "to ASx announce OBJECT".
func parseExport(value string) (ExportRule, error) {
	var rule ExportRule
	rest := strings.TrimSpace(value)
	if !strings.HasPrefix(strings.ToLower(rest), "to ") {
		return rule, fmt.Errorf("export without 'to': %q", value)
	}
	rest = strings.TrimSpace(rest[3:])
	sp := strings.IndexAny(rest, " \t")
	if sp < 0 {
		return rule, fmt.Errorf("export missing announce: %q", value)
	}
	asn, err := parseASN(rest[:sp])
	if err != nil {
		return rule, err
	}
	rule.To = asn
	rest = strings.TrimSpace(rest[sp:])
	if !strings.HasPrefix(strings.ToLower(rest), "announce") {
		return rule, fmt.Errorf("export missing 'announce': %q", value)
	}
	rule.Announce = strings.TrimSpace(rest[len("announce"):])
	if rule.Announce == "" {
		return rule, fmt.Errorf("empty announce: %q", value)
	}
	return rule, nil
}
