package irr

import (
	"bytes"
	"strings"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/topogen"
)

const sampleDB = `% RADB snapshot
aut-num:     AS1
as-name:     EXAMPLE-BACKBONE
descr:       Example backbone network
import:      from AS2 action pref = 1; accept ANY
import:      from AS3 action pref = 10, med = 0; accept AS3
import:      from AS4 accept ANY
export:      to AS2 announce AS1
changed:     noc@as1 20021104
source:      RADB

aut-num:     AS7
descr:       Stale object
import:      from AS8 action pref = 5; accept ANY
changed:     noc@as7 20010101
source:      RIPE
`

func TestParseSample(t *testing.T) {
	db, err := Parse(strings.NewReader(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Objects) != 2 {
		t.Fatalf("objects = %d", len(db.Objects))
	}
	o, ok := db.Get(1)
	if !ok {
		t.Fatal("AS1 missing")
	}
	if o.ASName != "EXAMPLE-BACKBONE" || o.ChangedDate != 20021104 || o.Source != "RADB" {
		t.Fatalf("metadata: %+v", o)
	}
	if len(o.Imports) != 3 {
		t.Fatalf("imports = %d", len(o.Imports))
	}
	if o.Imports[0].From != 2 || o.Imports[0].Pref != 1 || o.Imports[0].Accept != "ANY" {
		t.Fatalf("import[0]: %+v", o.Imports[0])
	}
	// Multi-part action: pref extracted, med ignored.
	if o.Imports[1].Pref != 10 || o.Imports[1].Accept != "AS3" {
		t.Fatalf("import[1]: %+v", o.Imports[1])
	}
	// No action: pref = -1.
	if o.Imports[2].Pref != -1 {
		t.Fatalf("import[2]: %+v", o.Imports[2])
	}
	if len(o.Exports) != 1 || o.Exports[0].To != 2 || o.Exports[0].Announce != "AS1" {
		t.Fatalf("exports: %+v", o.Exports)
	}
	if _, ok := db.Get(99); ok {
		t.Fatal("phantom object")
	}
}

func TestFilterFresh(t *testing.T) {
	db, err := Parse(strings.NewReader(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	fresh := db.FilterFresh(20020101)
	if len(fresh.Objects) != 1 || fresh.Objects[0].ASN != 1 {
		t.Fatalf("fresh = %+v", fresh.Objects)
	}
}

func TestRoundTrip(t *testing.T) {
	db, err := Parse(strings.NewReader(sampleDB))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Objects) != len(db.Objects) {
		t.Fatalf("object count changed: %d -> %d", len(db.Objects), len(back.Objects))
	}
	a, _ := back.Get(1)
	if len(a.Imports) != 3 || a.Imports[0].Pref != 1 || a.Imports[2].Pref != -1 {
		t.Fatalf("imports after round trip: %+v", a.Imports)
	}
	if a.ChangedDate != 20021104 {
		t.Fatalf("changed date lost: %d", a.ChangedDate)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"garbage line\n",
		"aut-num: ASx\n",
		"as-name: X\n", // attribute outside object
		"aut-num: AS1\nimport: nonsense\n",
		"aut-num: AS1\nimport: from AS2\n",
		"aut-num: AS1\nimport: from AS2 action pref = x; accept ANY\n",
		"aut-num: AS1\nimport: from AS2 action pref = 1 accept ANY\n", // missing ';'
		"aut-num: AS1\nimport: from AS2 action pref = 1; accept\n",
		"aut-num: AS1\nexport: to AS2\n",
		"aut-num: AS1\nexport: announce AS1\n",
		"aut-num: AS1\nexport: to AS2 announce\n",
	}
	for _, b := range bad {
		if _, err := Parse(strings.NewReader(b)); err == nil {
			t.Errorf("Parse(%q) succeeded", b)
		}
	}
}

func TestPrefConversion(t *testing.T) {
	for _, lp := range []uint32{80, 90, 100, 104} {
		if got := LocalPrefFromPref(PrefFromLocalPref(lp)); got != lp {
			t.Fatalf("conversion: %d -> %d", lp, got)
		}
	}
	// Inversion: higher localpref → smaller pref.
	if PrefFromLocalPref(100) >= PrefFromLocalPref(80) {
		t.Fatal("pref ordering must invert localpref ordering")
	}
}

func TestGenerateFromTopology(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(200, 51))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultGenOptions(3)
	db := Generate(topo, opts)
	if len(db.Objects) == 0 {
		t.Fatal("empty registry")
	}
	// Missing fraction is roughly honored.
	frac := float64(len(db.Objects)) / float64(len(topo.Order))
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("object coverage %.2f, expected ~0.75", frac)
	}
	stale, fresh := 0, 0
	prefsSeen := 0
	for _, o := range db.Objects {
		switch o.ChangedDate {
		case opts.FreshDate:
			fresh++
		case opts.StaleDate:
			stale++
		default:
			t.Fatalf("unexpected date %d", o.ChangedDate)
		}
		pol := topo.Policies[o.ASN]
		for _, im := range o.Imports {
			if im.Pref < 0 {
				continue
			}
			prefsSeen++
			want, ok := pol.Import.NeighborPref[im.From]
			if !ok {
				// Neighbors without configured pref (siblings) never get
				// actions in the generator.
				t.Fatalf("%v: pref for unconfigured neighbor %v", o.ASN, im.From)
			}
			if LocalPrefFromPref(im.Pref) != want {
				t.Fatalf("%v→%v: pref %d does not invert to localpref %d", o.ASN, im.From, im.Pref, want)
			}
		}
	}
	if stale == 0 || fresh == 0 {
		t.Fatalf("staleness mix degenerate: %d stale, %d fresh", stale, fresh)
	}
	if prefsSeen == 0 {
		t.Fatal("no pref actions generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(120, 52))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if _, err := Generate(topo, DefaultGenOptions(9)).WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(topo, DefaultGenOptions(9)).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("generation not deterministic")
	}
	var c bytes.Buffer
	if _, err := Generate(topo, DefaultGenOptions(10)).WriteTo(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical registries")
	}
}

func TestGenerateRoundTripThroughRPSL(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(120, 53))
	if err != nil {
		t.Fatal(err)
	}
	db := Generate(topo, DefaultGenOptions(4))
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Objects) != len(db.Objects) {
		t.Fatalf("count: %d -> %d", len(db.Objects), len(back.Objects))
	}
	for i := range db.Objects {
		want, got := db.Objects[i], back.Objects[i]
		if want.ASN != got.ASN || len(want.Imports) != len(got.Imports) {
			t.Fatalf("object %v changed", want.ASN)
		}
		wantPrefs := want.NeighborsWithPref()
		gotPrefs := got.NeighborsWithPref()
		if len(wantPrefs) != len(gotPrefs) {
			t.Fatalf("%v: pref count changed", want.ASN)
		}
		for nb, lp := range wantPrefs {
			if gotPrefs[nb] != lp {
				t.Fatalf("%v→%v: %d != %d", want.ASN, nb, gotPrefs[nb], lp)
			}
		}
	}
}

func TestNeighborsWithPref(t *testing.T) {
	o := AutNum{Imports: []ImportRule{
		{From: 2, Pref: PrefFromLocalPref(100)},
		{From: 3, Pref: -1},
	}}
	m := o.NeighborsWithPref()
	if len(m) != 1 || m[bgp.ASN(2)] != 100 {
		t.Fatalf("NeighborsWithPref = %v", m)
	}
}
