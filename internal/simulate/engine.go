// Package simulate computes the converged BGP state of a generated
// topology: every AS originates its prefixes, export policies (the
// valley-free rules of Section 2.2.2 plus the topology's ground-truth
// selective-announcement, community and aggregation policies) gate
// propagation, import policies assign local preference, and the decision
// process selects best routes.
//
// The computation is per-prefix event-driven to a fixpoint, which handles
// atypical preferences and scoped communities uniformly, and is
// embarrassingly parallel across prefixes. Only designated vantage ASes
// retain their full tables (candidate routes included), mirroring how the
// paper observes the Internet through RouteViews peers and Looking Glass
// servers.
//
// On top of the one-shot Run/RunSubset entry points, the package offers a
// what-if scenario engine (see scenario.go): Engine holds a converged
// state plus a per-prefix record of every AS's best next hop, and
// Engine.Apply re-converges only the prefixes an event — link failure or
// restoration, prefix withdrawal or re-origination, policy edit — can
// actually disturb, seeding the per-prefix activation loop from the
// reconstructed pre-event state instead of recomputing the fixpoint from
// scratch. Ablation knobs (DecisionDepth, IgnoreImportPolicy) are
// exercised by the benchmark suite in the repository root.
package simulate

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
)

// LocalRoutePref is the local preference assigned to locally originated
// routes, modelling the "weight"-style dominance of local routes over any
// learned route.
const LocalRoutePref = 1 << 20

// Options configures a simulation run.
type Options struct {
	// VantagePoints lists the ASes whose complete tables (all candidate
	// routes) are retained in the result. Other ASes' state is transient.
	VantagePoints []bgp.ASN
	// Parallelism bounds worker goroutines; 0 uses GOMAXPROCS.
	Parallelism int
	// DecisionDepth truncates the decision process (ablation); 0 = full.
	DecisionDepth bgp.DecisionStep
	// IgnoreImportPolicy, when true, leaves every learned route at the
	// protocol-default local preference, reducing selection to shortest
	// AS path — the ablation baseline the paper's Section 4.1 argues
	// against.
	IgnoreImportPolicy bool
	// ActivationBudget bounds per-prefix work as a multiple of the edge
	// count; 0 uses a generous default. Prefixes exceeding it are
	// reported in Result.Unconverged.
	ActivationBudget int
}

// Result is the observable outcome of a run.
type Result struct {
	// Tables holds the full RIB of each vantage AS.
	Tables map[bgp.ASN]*bgp.RIB
	// ReachCount counts, per prefix, how many ASes hold at least one
	// route to it — the "available paths" view behind the paper's
	// connectivity-vs-reachability discussion.
	ReachCount map[netx.Prefix]int
	// Unconverged lists prefixes that hit the activation budget (none at
	// sane configurations; a non-empty list indicates a preference cycle).
	Unconverged []netx.Prefix
}

// engine holds immutable per-run state shared by workers.
type engine struct {
	topo  *topogen.Topology
	opts  Options
	idx   map[bgp.ASN]int
	asns  []bgp.ASN
	nbrs  [][]int32 // sorted neighbor indices per AS
	rels  [][]asgraph.Relationship
	pols  []*topogen.Policy
	depth bgp.DecisionStep

	vantage     map[int]bool
	tables      map[int]*tableSlot
	budget      int
	reachCounts []int64 // indexed like prefix list
	prefixes    []netx.Prefix
	prefixIdx   map[netx.Prefix]int

	// track, when non-nil, records for every prefix the converged best
	// next hop of every AS: track[prefixIdx][asIdx] is the as-index the
	// best route was learned from, the AS's own index for local routes,
	// and trackNone for no route. The scenario engine reconstructs full
	// pre-event routing state from this forest.
	track [][]int32
	// trackShared marks track rows shared with a copy-on-write engine
	// clone: the row is copied before its first in-place write. Nil
	// until the first Clone.
	trackShared []bool
}

// tableSlot holds one vantage table behind its lock. The slot pointer
// is stable for the engine's lifetime (the tables map is never written
// after construction), so workers can mutate the RIB — replacing it
// first when it is shared with an engine clone — without racing on the
// map itself.
type tableSlot struct {
	mu  sync.Mutex
	rib *bgp.RIB
	// shared marks the RIB as visible from a copy-on-write clone.
	shared bool
}

// writable returns the slot's RIB, un-sharing it first. The retired RIB
// is never written again (every sharer copies-on-write through its own
// slot), so the cheap entry-level CloneCOW is safe here. Callers must
// hold slot.mu.
func (s *tableSlot) writable() *bgp.RIB {
	if s.shared {
		s.rib = s.rib.CloneCOW()
		s.shared = false
	}
	return s.rib
}

// trackNone marks "no route" in the per-prefix best-next-hop record.
const trackNone int32 = -1

func newEngine(topo *topogen.Topology, opts Options) *engine {
	e := &engine{
		topo: topo,
		opts: opts,
		idx:  make(map[bgp.ASN]int, len(topo.Order)),
		asns: topo.Order,
	}
	for i, asn := range topo.Order {
		e.idx[asn] = i
	}
	n := len(e.asns)
	e.nbrs = make([][]int32, n)
	e.rels = make([][]asgraph.Relationship, n)
	e.pols = make([]*topogen.Policy, n)
	for i, asn := range e.asns {
		nbs := topo.Graph.Neighbors(asn)
		e.nbrs[i] = make([]int32, len(nbs))
		e.rels[i] = make([]asgraph.Relationship, len(nbs))
		for j, nb := range nbs {
			e.nbrs[i][j] = int32(e.idx[nb])
			e.rels[i][j] = topo.Graph.Rel(asn, nb)
		}
		e.pols[i] = topo.Policies[asn]
	}
	e.depth = opts.DecisionDepth
	if e.depth == 0 {
		e.depth = bgp.StepRouterID
	}
	e.vantage = make(map[int]bool, len(opts.VantagePoints))
	e.tables = make(map[int]*tableSlot, len(opts.VantagePoints))
	for _, asn := range opts.VantagePoints {
		i, ok := e.idx[asn]
		if !ok {
			continue
		}
		e.vantage[i] = true
		rib := bgp.NewRIB(asn)
		rib.SetDecisionDepth(opts.DecisionDepth)
		e.tables[i] = &tableSlot{rib: rib}
	}
	e.budget = opts.ActivationBudget
	if e.budget == 0 {
		e.budget = 200
	}
	e.prefixes = make([]netx.Prefix, 0, len(topo.PrefixOrigin))
	for p := range topo.PrefixOrigin {
		e.prefixes = append(e.prefixes, p)
	}
	netx.SortPrefixes(e.prefixes)
	e.prefixIdx = make(map[netx.Prefix]int, len(e.prefixes))
	for i, p := range e.prefixes {
		e.prefixIdx[p] = i
	}
	e.reachCounts = make([]int64, len(e.prefixes))
	return e
}

// Run simulates the whole topology.
func Run(topo *topogen.Topology, opts Options) (*Result, error) {
	e := newEngine(topo, opts)
	unconverged := e.runPrefixes(e.prefixes)
	return e.buildResult(unconverged), nil
}

// RunSubset recomputes only the given prefixes against existing vantage
// tables (dropping their previous routes first). Used by the epoch loop
// of the persistence experiments. The result shares table objects with
// prior epochs' result.
func RunSubset(topo *topogen.Topology, opts Options, prior *Result, prefixes []netx.Prefix) (*Result, error) {
	e := newEngine(topo, opts)
	// Adopt prior tables so untouched prefixes carry over.
	for i, slot := range e.tables {
		asn := e.asns[i]
		if prev, ok := prior.Tables[asn]; ok {
			slot.rib = prev
			for _, p := range prefixes {
				prev.DropPrefix(p)
			}
		}
	}
	// Carry over reach counts for untouched prefixes.
	for p, c := range prior.ReachCount {
		if i, ok := e.prefixIdx[p]; ok {
			e.reachCounts[i] = int64(c)
		}
	}
	for _, p := range prefixes {
		if i, ok := e.prefixIdx[p]; ok {
			e.reachCounts[i] = 0
		}
	}
	unconverged := e.runPrefixes(prefixes)
	res := e.buildResult(unconverged)
	// Prefixes that no longer exist (churn removed none here, but be
	// safe) keep prior counts via the carry-over above.
	return res, nil
}

func (e *engine) buildResult(unconverged []netx.Prefix) *Result {
	res := &Result{
		Tables:      make(map[bgp.ASN]*bgp.RIB, len(e.tables)),
		ReachCount:  make(map[netx.Prefix]int, len(e.prefixes)),
		Unconverged: unconverged,
	}
	for i, slot := range e.tables {
		res.Tables[e.asns[i]] = slot.rib
	}
	for i, p := range e.prefixes {
		res.ReachCount[p] = int(e.reachCounts[i])
	}
	return res
}

func (e *engine) runPrefixes(prefixes []netx.Prefix) []netx.Prefix {
	var (
		mu          sync.Mutex
		unconverged []netx.Prefix
	)
	e.forEachPrefix(prefixes, func(st *workerState, p netx.Prefix) {
		if !e.propagate(st, p) {
			mu.Lock()
			unconverged = append(unconverged, p)
			mu.Unlock()
		}
	})
	netx.SortPrefixes(unconverged)
	return unconverged
}

// forEachPrefix runs fn over every prefix on a bounded worker pool, one
// reusable workerState per worker. Both the full-convergence and the
// incremental scenario passes schedule through it.
func (e *engine) forEachPrefix(prefixes []netx.Prefix, fn func(*workerState, netx.Prefix)) {
	workers := e.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(prefixes) {
		workers = len(prefixes)
	}
	if workers < 1 {
		workers = 1
	}
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newWorkerState(len(e.asns))
			for {
				mu.Lock()
				if next >= len(prefixes) {
					mu.Unlock()
					return
				}
				p := prefixes[next]
				next++
				mu.Unlock()
				fn(st, p)
			}
		}()
	}
	wg.Wait()
}

// workerState is the reusable per-prefix scratch space.
type workerState struct {
	version  uint32
	seen     []uint32
	cands    []map[int32]*bgp.Route
	best     []*bgp.Route
	bestFrom []int32 // as-index best was learned from; own index = local; trackNone = none
	inQueue  []bool
	queue    []int32
	touched  []int32
}

func newWorkerState(n int) *workerState {
	return &workerState{
		seen:     make([]uint32, n),
		cands:    make([]map[int32]*bgp.Route, n),
		best:     make([]*bgp.Route, n),
		bestFrom: make([]int32, n),
		inQueue:  make([]bool, n),
	}
}

func (st *workerState) reset() {
	st.version++
	st.queue = st.queue[:0]
	st.touched = st.touched[:0]
}

func (st *workerState) touch(i int32) {
	if st.seen[i] != st.version {
		st.seen[i] = st.version
		st.cands[i] = nil
		st.best[i] = nil
		st.bestFrom[i] = trackNone
		st.inQueue[i] = false
		st.touched = append(st.touched, i)
	}
}

// propagate runs one prefix to convergence. It returns false when the
// activation budget is exhausted.
func (e *engine) propagate(st *workerState, prefix netx.Prefix) bool {
	origin, ok := e.topo.PrefixOrigin[prefix]
	if !ok {
		return true
	}
	oi := int32(e.idx[origin])
	st.reset()
	st.touch(oi)

	st.best[oi] = localRoute(prefix, origin)
	st.bestFrom[oi] = oi
	st.push(oi)

	budget := e.budget * (len(e.asns) + e.topo.Graph.NumEdges())
	activations := 0
	for len(st.queue) > 0 {
		activations++
		if activations > budget {
			e.capture(st, prefix)
			return false
		}
		u := st.queue[0]
		st.queue = st.queue[1:]
		st.inQueue[u] = false
		e.exportFrom(st, u)
	}
	e.capture(st, prefix)
	return true
}

func (st *workerState) push(i int32) {
	if !st.inQueue[i] {
		st.inQueue[i] = true
		st.queue = append(st.queue, i)
	}
}

// exportFrom announces u's current best route to each neighbor (or
// withdraws a previous announcement no longer permitted).
func (e *engine) exportFrom(st *workerState, u int32) {
	best := st.best[u]
	for j, v := range e.nbrs[u] {
		relVtoU := e.rels[u][j] // what v is to u
		allowed := best != nil && e.shouldExport(u, v, relVtoU, best)
		if allowed {
			e.announce(st, u, v, relVtoU, best)
		} else {
			e.withdraw(st, u, v)
		}
	}
}

// shouldExport applies the export rules of Section 2.2.2 plus the
// topology's ground-truth export policies.
func (e *engine) shouldExport(u, v int32, relVtoU asgraph.Relationship, route *bgp.Route) bool {
	uASN, vASN := e.asns[u], e.asns[v]

	// Ingress class of the route at u.
	var ingress asgraph.Relationship // relationship of the announcing neighbor to u
	if !route.IsLocal() {
		nh, _ := route.NextHopAS()
		ingress = e.topo.Graph.Rel(uASN, nh)
	}
	return exportAllowed(uASN, vASN, relVtoU, ingress, route, e.pols[u])
}

// exportAllowed is the policy core of shouldExport with the ingress
// classification already resolved, so the scenario engine can evaluate
// it against a pre-event relationship view or policy snapshot.
func exportAllowed(uASN, vASN bgp.ASN, relVtoU, ingress asgraph.Relationship, route *bgp.Route, pol *topogen.Policy) bool {
	// Well-known NO_EXPORT / NO_ADVERTISE.
	if route.Communities.Has(bgp.NoExport) || route.Communities.Has(bgp.NoAdvertise) {
		return false
	}
	// Scoped no-upstream community addressed to u: do not re-export to
	// providers or peers.
	if route.Communities.Has(bgp.MakeCommunity(uASN, topogen.NoUpstreamValue)) &&
		(relVtoU == asgraph.RelProvider || relVtoU == asgraph.RelPeer) {
		return false
	}

	// The standard valley-free export rules: to a provider or peer, only
	// own routes and customer routes.
	if relVtoU == asgraph.RelProvider || relVtoU == asgraph.RelPeer {
		if !route.IsLocal() && ingress != asgraph.RelCustomer && ingress != asgraph.RelSibling {
			return false
		}
	}

	if pol == nil {
		return true
	}

	// Origin-side selective announcement (Case 3 subsets).
	if route.IsLocal() && relVtoU == asgraph.RelProvider {
		if !pol.Export.AnnouncesToProvider(route.Prefix, vASN) {
			return false
		}
	}
	// Origin-side withholding from a peer (Table 10).
	if route.IsLocal() && relVtoU == asgraph.RelPeer {
		if pol.Export.ExcludedFromPeer(route.Prefix, vASN) {
			return false
		}
	}
	// Intermediate-AS selective announcement.
	if ingress == asgraph.RelCustomer && relVtoU == asgraph.RelProvider {
		if pol.Export.TransitExcluded(uASN, route.Prefix, vASN) {
			return false
		}
	}
	// Provider-side aggregation of delegated specifics (Case 2): the
	// covering block is announced instead; the specific stays inside.
	if ingress == asgraph.RelCustomer && pol.Export.AggregateSpecifics[route.Prefix] {
		return false
	}
	return true
}

// announce builds the route as seen at v and installs it.
func (e *engine) announce(st *workerState, u, v int32, relVtoU asgraph.Relationship, best *bgp.Route) {
	uASN, vASN := e.asns[u], e.asns[v]
	// Loop prevention: v discards routes already carrying its ASN.
	if best.Path.Contains(vASN) || vASN == e.topo.PrefixOrigin[best.Prefix] {
		e.withdraw(st, u, v)
		return
	}
	r := e.buildAnnouncement(uASN, vASN, relVtoU, best, e.pols[u], e.pols[v])
	st.touch(v)
	if st.cands[v] == nil {
		st.cands[v] = make(map[int32]*bgp.Route, 4)
	}
	prev := st.cands[v][u]
	if prev != nil && sameRoute(prev, r) {
		return
	}
	st.cands[v][u] = r
	e.reselect(st, v)
}

// buildAnnouncement constructs the route v installs when u announces
// best over a session where v is relVtoU to u. The announcing and
// receiving policies are explicit so the scenario engine can rebuild
// pre-event routes against policy snapshots.
func (e *engine) buildAnnouncement(uASN, vASN bgp.ASN, relVtoU asgraph.Relationship, best *bgp.Route, polU, polV *topogen.Policy) *bgp.Route {
	comm := best.Communities
	if best.IsLocal() && polU != nil {
		if tagged, ok := polU.Export.NoUpstream[best.Prefix]; ok && tagged == vASN {
			comm = comm.Add(bgp.MakeCommunity(vASN, topogen.NoUpstreamValue))
		}
	}
	path := best.Path.Prepend(uASN, 1)

	// Import side at v: local preference and relationship tagging.
	var lp uint32 = bgp.DefaultLocalPref
	if !e.opts.IgnoreImportPolicy {
		lp = e.topo.EffectiveLocalPrefWith(polV, vASN, uASN, best.Prefix)
	}
	if polV != nil && polV.Tagging != nil {
		if tag, ok := polV.Tagging.TagFor(relVtoU.Invert(), uASN); ok {
			// relVtoU is what v is to u; the tag classifies u from v's
			// point of view, hence the inversion.
			comm = comm.Add(tag)
		}
	}

	return &bgp.Route{
		Prefix:      best.Prefix,
		Path:        path,
		NextHop:     routerIP(uASN),
		LocalPref:   lp,
		Origin:      best.Origin,
		Communities: comm,
	}
}

func (e *engine) withdraw(st *workerState, u, v int32) {
	if st.seen[v] != st.version || st.cands[v] == nil {
		return
	}
	if _, ok := st.cands[v][u]; !ok {
		return
	}
	delete(st.cands[v], u)
	e.reselect(st, v)
}

// reselect recomputes v's best route and schedules v when it changed.
func (e *engine) reselect(st *workerState, v int32) {
	// Deterministic candidate order: ascending neighbor index.
	keys := make([]int32, 0, len(st.cands[v]))
	for k := range st.cands[v] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cands := make([]*bgp.Route, 0, len(keys))
	for _, k := range keys {
		cands = append(cands, st.cands[v][k])
	}
	newBest := bgp.Best(cands, e.depth)
	from := trackNone
	for i, r := range cands {
		if r == newBest {
			from = keys[i]
			break
		}
	}
	if routesEquivalent(newBest, st.best[v]) {
		st.bestFrom[v] = from
		return
	}
	st.best[v] = newBest
	st.bestFrom[v] = from
	st.push(v)
}

func sameRoute(a, b *bgp.Route) bool {
	return a.Prefix == b.Prefix && a.LocalPref == b.LocalPref &&
		a.MED == b.MED && a.Origin == b.Origin &&
		a.Path.Equal(b.Path) && len(a.Communities) == len(b.Communities) &&
		communitiesEqual(a.Communities, b.Communities)
}

func communitiesEqual(a, b bgp.Communities) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func routesEquivalent(a, b *bgp.Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return sameRoute(a, b)
}

// capture copies converged state into vantage tables and reach counters.
func (e *engine) capture(st *workerState, prefix netx.Prefix) {
	pi := e.prefixIdx[prefix]
	if e.track != nil {
		row := e.track[pi]
		// A row shared with an engine clone is replaced, not rewritten
		// in place: capture overwrites every cell anyway.
		if row == nil || (e.trackShared != nil && e.trackShared[pi]) {
			row = make([]int32, len(e.asns))
			e.track[pi] = row
			if e.trackShared != nil {
				e.trackShared[pi] = false
			}
		}
		for i := range row {
			row[i] = trackNone
		}
		for _, i := range st.touched {
			row[i] = st.bestFrom[i]
		}
	}
	reach := 0
	for _, i := range st.touched {
		if st.best[i] != nil || len(st.cands[i]) > 0 {
			reach++
		}
		if !e.vantage[int(i)] {
			continue
		}
		slot := e.tables[int(i)]
		slot.mu.Lock()
		rib := slot.writable()
		if st.best[i] != nil && st.best[i].IsLocal() {
			rib.Upsert(e.asns[i], st.best[i])
		}
		// Candidates in deterministic order.
		keys := make([]int32, 0, len(st.cands[i]))
		for k := range st.cands[i] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			rib.Upsert(e.asns[k], st.cands[i][k])
		}
		slot.mu.Unlock()
	}
	e.reachCounts[pi] = int64(reach)
}

// routerIP synthesizes a stable next-hop IP for an AS's border router.
func routerIP(asn bgp.ASN) uint32 {
	return 0x0a000000 | (uint32(asn)&0xffff)<<8 | 1 // 10.x.y.1
}

// localRoute is the locally originated route installed at an origin AS.
func localRoute(prefix netx.Prefix, origin bgp.ASN) *bgp.Route {
	return &bgp.Route{
		Prefix:    prefix,
		LocalPref: LocalRoutePref,
		Origin:    bgp.OriginIGP,
		NextHop:   routerIP(origin),
	}
}

// String renders run options for diagnostics.
func (o Options) String() string {
	return fmt.Sprintf("simulate{vantage=%d, depth=%v, noimport=%v}",
		len(o.VantagePoints), o.DecisionDepth, o.IgnoreImportPolicy)
}
