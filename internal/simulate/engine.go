// Package simulate computes the converged BGP state of a generated
// topology: every AS originates its prefixes, export policies (the
// valley-free rules of Section 2.2.2 plus the topology's ground-truth
// selective-announcement, community and aggregation policies) gate
// propagation, import policies assign local preference, and the decision
// process selects best routes.
//
// The computation is per-prefix event-driven to a fixpoint, which handles
// atypical preferences and scoped communities uniformly, and is
// embarrassingly parallel across prefixes. Only designated vantage ASes
// retain their full tables (candidate routes included), mirroring how the
// paper observes the Internet through RouteViews peers and Looking Glass
// servers.
//
// Two structural optimizations keep the loop fast without changing its
// results (engine_equivalence_test.go proves byte-identity against a
// reference implementation):
//
//   - the hot loop is allocation-lean: candidates live in a flat CSR
//     store aligned with the adjacency, Route/Path values come from
//     per-worker arenas, and best-route selection is an inline linear
//     scan (candidates always have distinct next-hop ASes, so the
//     deterministic-MED grouping of bgp.Best degenerates to it);
//   - prefixes are converged atom-sharded (see atoms.go): one full
//     propagation per propagation-equivalence class, then a cheap
//     deviation re-convergence per member prefix.
//
// On top of the one-shot Run/RunSubset entry points, the package offers a
// what-if scenario engine (see scenario.go): Engine holds a converged
// state plus a per-prefix record of every AS's best next hop, and
// Engine.Apply re-converges only the prefixes an event — link failure or
// restoration, prefix withdrawal or re-origination, policy edit — can
// actually disturb, seeding the per-prefix activation loop from the
// reconstructed pre-event state instead of recomputing the fixpoint from
// scratch. Ablation knobs (DecisionDepth, IgnoreImportPolicy) are
// exercised by the benchmark suite in the repository root.
package simulate

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
	"github.com/policyscope/policyscope/obs"
)

// LocalRoutePref is the local preference assigned to locally originated
// routes, modelling the "weight"-style dominance of local routes over any
// learned route.
const LocalRoutePref = 1 << 20

// Options configures a simulation run.
type Options struct {
	// VantagePoints lists the ASes whose complete tables (all candidate
	// routes) are retained in the result. Other ASes' state is transient.
	VantagePoints []bgp.ASN
	// Parallelism bounds worker goroutines; 0 uses GOMAXPROCS.
	Parallelism int
	// DecisionDepth truncates the decision process (ablation); 0 = full.
	DecisionDepth bgp.DecisionStep
	// IgnoreImportPolicy, when true, leaves every learned route at the
	// protocol-default local preference, reducing selection to shortest
	// AS path — the ablation baseline the paper's Section 4.1 argues
	// against.
	IgnoreImportPolicy bool
	// ActivationBudget bounds per-prefix work as a multiple of the edge
	// count; 0 uses a generous default. Prefixes exceeding it are
	// reported in Result.Unconverged.
	ActivationBudget int
	// DisableAtomDedup turns off atom-sharded convergence and runs every
	// prefix through the full per-prefix fixpoint. The results are
	// identical either way (the equivalence property tests prove it);
	// the knob exists for benchmarking and as an escape hatch.
	DisableAtomDedup bool
	// Intern, when set, is the shared canonical-attribute table the
	// engine's workers populate and consult (community sets today). A
	// study loaded from the binary cache passes the table its decoder
	// already filled, so convergence and what-if work reuse the decoded
	// allocations. Nil allocates a private table.
	Intern *bgp.Intern
}

// Result is the observable outcome of a run.
type Result struct {
	// Tables holds the full RIB of each vantage AS.
	Tables map[bgp.ASN]*bgp.RIB
	// ReachCount counts, per prefix, how many ASes hold at least one
	// route to it — the "available paths" view behind the paper's
	// connectivity-vs-reachability discussion.
	ReachCount map[netx.Prefix]int
	// Unconverged lists prefixes that hit the activation budget (none at
	// sane configurations; a non-empty list indicates a preference cycle).
	Unconverged []netx.Prefix
}

// engine holds immutable per-run state shared by workers.
type engine struct {
	topo  *topogen.Topology
	opts  Options
	idx   map[bgp.ASN]int
	asns  []bgp.ASN
	nbrs  [][]int32 // sorted neighbor indices per AS
	rels  [][]asgraph.Relationship
	pols  []*topogen.Policy
	depth bgp.DecisionStep

	// csrOff is the CSR offset table over nbrs (len n+1); adjVersion is
	// drawn from the process-global counter whenever the adjacency (and
	// hence the layout) changes, so pooled worker states know to re-size
	// their candidate stores. back is the reverse index: back[u][j] is
	// the position of u inside nbrs[v] for v = nbrs[u][j], so the export
	// loop addresses the receiver's candidate slot without a binary
	// search. statePool is a pointer because engine clones share the
	// parent's pool: worker states warmed on the base engine serve every
	// clone (versions are globally unique, so a state that migrated from
	// an engine with a different layout re-sizes on first use).
	csrOff     []int32
	back       [][]int32
	adjVersion uint64
	statePool  *sync.Pool

	// intern is the shared canonical-attribute table (see Options.Intern);
	// never nil after newEngine, shared by Clone.
	intern *bgp.Intern

	vantage     map[int]bool
	tables      map[int]*tableSlot
	budget      int
	reachCounts []int64 // indexed like prefix list
	prefixes    []netx.Prefix
	prefixIdx   map[netx.Prefix]int

	// atoms is the propagation-equivalence partition used by the cold
	// convergence path; nil when dedup is disabled. atomsStale is set by
	// Engine.Apply — scenario events can change origins, policies and
	// adjacency, invalidating the partition — and routes later
	// convergences through the plain per-prefix path. See atoms.go.
	atoms      *atomIndex
	atomsStale bool

	// journal, when armed via Engine.Checkpoint, captures pre-images of
	// everything the next Apply overwrites so Rollback can restore the
	// checkpointed state. See journal.go.
	journal *applyJournal

	// track, when non-nil, records for every prefix the converged best
	// next hop of every AS: track[prefixIdx][asIdx] is the as-index the
	// best route was learned from, the AS's own index for local routes,
	// and trackNone for no route. The scenario engine reconstructs full
	// pre-event routing state from this forest.
	track [][]int32
	// trackShared marks track rows shared with a copy-on-write engine
	// clone: the row is copied or replaced before its first in-place
	// write. Nil until the first Clone. (Atom fan-out deliberately does
	// NOT share rows between class members — members diverge whenever a
	// deviation flips a best choice, so every prefix owns its row.)
	trackShared []bool
}

// tableSlot holds one vantage table behind its lock. The slot pointer
// is stable for the engine's lifetime (the tables map is never written
// after construction), so workers can mutate the RIB — replacing it
// first when it is shared with an engine clone — without racing on the
// map itself.
type tableSlot struct {
	mu  sync.Mutex
	rib *bgp.RIB
	// shared marks the RIB as visible from a copy-on-write clone.
	shared bool
}

// writable returns the slot's RIB, un-sharing it first. The retired RIB
// is never written again (every sharer copies-on-write through its own
// slot), so the cheap entry-level CloneCOW is safe here. Callers must
// hold slot.mu.
func (s *tableSlot) writable() *bgp.RIB {
	if s.shared {
		s.rib = s.rib.CloneCOW()
		s.shared = false
	}
	return s.rib
}

// trackNone marks "no route" in the per-prefix best-next-hop record.
const trackNone int32 = -1

func newEngine(topo *topogen.Topology, opts Options) *engine {
	e := &engine{
		topo:      topo,
		opts:      opts,
		idx:       make(map[bgp.ASN]int, len(topo.Order)),
		asns:      topo.Order,
		statePool: new(sync.Pool),
		intern:    opts.Intern,
	}
	if e.intern == nil {
		e.intern = bgp.NewIntern()
	}
	for i, asn := range topo.Order {
		e.idx[asn] = i
	}
	n := len(e.asns)
	e.nbrs = make([][]int32, n)
	e.rels = make([][]asgraph.Relationship, n)
	e.pols = make([]*topogen.Policy, n)
	for i, asn := range e.asns {
		nbs := topo.Graph.Neighbors(asn)
		e.nbrs[i] = make([]int32, len(nbs))
		e.rels[i] = make([]asgraph.Relationship, len(nbs))
		for j, nb := range nbs {
			e.nbrs[i][j] = int32(e.idx[nb])
			e.rels[i][j] = topo.Graph.Rel(asn, nb)
		}
		e.pols[i] = topo.Policies[asn]
	}
	e.rebuildCSR()
	e.depth = opts.DecisionDepth
	if e.depth == 0 {
		e.depth = bgp.StepRouterID
	}
	e.vantage = make(map[int]bool, len(opts.VantagePoints))
	e.tables = make(map[int]*tableSlot, len(opts.VantagePoints))
	for _, asn := range opts.VantagePoints {
		i, ok := e.idx[asn]
		if !ok {
			continue
		}
		e.vantage[i] = true
		rib := bgp.NewRIB(asn)
		rib.SetDecisionDepth(opts.DecisionDepth)
		e.tables[i] = &tableSlot{rib: rib}
	}
	e.budget = opts.ActivationBudget
	if e.budget == 0 {
		e.budget = 200
	}
	e.prefixes = make([]netx.Prefix, 0, len(topo.PrefixOrigin))
	for p := range topo.PrefixOrigin {
		e.prefixes = append(e.prefixes, p)
	}
	netx.SortPrefixes(e.prefixes)
	e.prefixIdx = make(map[netx.Prefix]int, len(e.prefixes))
	for i, p := range e.prefixes {
		e.prefixIdx[p] = i
	}
	e.reachCounts = make([]int64, len(e.prefixes))
	if e.atomsApplicable() {
		e.atoms = buildAtomIndex(e)
	}
	return e
}

// atomsApplicable reports whether atom-sharded convergence is safe for
// the configured options. The fan-out correctness argument relies on the
// uniqueness of the converged fixpoint under the full decision process;
// truncated-decision ablations fall back to plain per-prefix propagation.
func (e *engine) atomsApplicable() bool {
	if e.opts.DisableAtomDedup {
		return false
	}
	return e.opts.DecisionDepth == 0 || e.opts.DecisionDepth == bgp.StepRouterID
}

// adjVersions issues process-globally unique adjacency versions. Global
// (not per engine) because clones share one state pool: a worker state
// warmed on engine A must never false-match engine B's layout just
// because both counted to the same value independently.
var adjVersions atomic.Uint64

// rebuildCSR refreshes the CSR offsets and the reverse index from the
// per-AS adjacency lists and re-stamps the adjacency version so pooled
// worker states re-size. The offset table is always a freshly
// allocated slice — never rewritten in place — because worker states
// from the family-shared pool alias the slice of whatever engine they
// last synced against; replacing wholesale keeps every published
// layout immutable, so an in-flight state on a sibling clone can keep
// reading its (version-matched) layout while this engine rebuilds.
func (e *engine) rebuildCSR() {
	n := len(e.asns)
	csrOff := make([]int32, n+1)
	if e.back == nil {
		e.back = make([][]int32, n)
	}
	off := int32(0)
	for i := 0; i < n; i++ {
		csrOff[i] = off
		off += int32(len(e.nbrs[i]))
	}
	csrOff[n] = off
	e.csrOff = csrOff
	for u := range e.nbrs {
		// Fresh slices: clones share the outer array until they rebuild.
		e.back[u] = make([]int32, len(e.nbrs[u]))
		for j, v := range e.nbrs[u] {
			e.back[u][j] = int32(slotOf(e.nbrs[v], int32(u)))
		}
	}
	e.adjVersion = adjVersions.Add(1)
}

// Run simulates the whole topology.
func Run(topo *topogen.Topology, opts Options) (*Result, error) {
	e := newEngine(topo, opts)
	unconverged := e.runPrefixes(e.prefixes)
	return e.buildResult(unconverged), nil
}

// RunSubset recomputes only the given prefixes against existing vantage
// tables (dropping their previous routes first). Used by the epoch loop
// of the persistence experiments. The result shares table objects with
// prior epochs' result.
func RunSubset(topo *topogen.Topology, opts Options, prior *Result, prefixes []netx.Prefix) (*Result, error) {
	e := newEngine(topo, opts)
	// Adopt prior tables so untouched prefixes carry over.
	for i, slot := range e.tables {
		asn := e.asns[i]
		if prev, ok := prior.Tables[asn]; ok {
			slot.rib = prev
			for _, p := range prefixes {
				prev.DropPrefix(p)
			}
		}
	}
	// Carry over reach counts for untouched prefixes.
	for p, c := range prior.ReachCount {
		if i, ok := e.prefixIdx[p]; ok {
			e.reachCounts[i] = int64(c)
		}
	}
	for _, p := range prefixes {
		if i, ok := e.prefixIdx[p]; ok {
			e.reachCounts[i] = 0
		}
	}
	unconverged := e.runPrefixes(prefixes)
	res := e.buildResult(unconverged)
	// Prefixes that no longer exist (churn removed none here, but be
	// safe) keep prior counts via the carry-over above.
	return res, nil
}

func (e *engine) buildResult(unconverged []netx.Prefix) *Result {
	res := &Result{
		Tables:      make(map[bgp.ASN]*bgp.RIB, len(e.tables)),
		ReachCount:  make(map[netx.Prefix]int, len(e.prefixes)),
		Unconverged: unconverged,
	}
	for i, slot := range e.tables {
		res.Tables[e.asns[i]] = slot.rib
	}
	for i, p := range e.prefixes {
		res.ReachCount[p] = int(e.reachCounts[i])
	}
	return res
}

// runPrefixes converges the given prefixes — atom-sharded when the
// partition is available, plain per-prefix otherwise — and returns the
// sorted list of prefixes that exhausted their activation budget.
func (e *engine) runPrefixes(prefixes []netx.Prefix) []netx.Prefix {
	var start time.Time
	if obs.Enabled() {
		start = time.Now()
	}
	var (
		mu          sync.Mutex
		unconverged []netx.Prefix
	)
	fail := func(p netx.Prefix) {
		mu.Lock()
		unconverged = append(unconverged, p)
		mu.Unlock()
	}
	if e.atoms != nil && !e.atomsStale {
		e.runAtoms(prefixes, fail)
	} else {
		e.forEachPrefix(prefixes, func(st *workerState, p netx.Prefix) {
			if !e.propagate(st, p) {
				fail(p)
			}
			e.capture(st, p)
		})
	}
	netx.SortPrefixes(unconverged)
	mConvergeRuns.Inc()
	mConvergePrefixes.Add(uint64(len(prefixes)))
	mConvergeUnconverged.Add(uint64(len(unconverged)))
	if !start.IsZero() {
		mConvergeSeconds.ObserveSince(start)
	}
	return unconverged
}

// forEachIndex runs body(i) for every i in [0, n) on a bounded worker
// pool. setup runs once per worker and returns the per-item body plus a
// teardown invoked when the worker drains. Every parallel pass (full
// convergence, atom groups, incremental scenarios) schedules through
// it.
func (e *engine) forEachIndex(n int, setup func() (body func(int), done func())) {
	workers := e.workerCount(n)
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, done := setup()
			defer done()
			for {
				mu.Lock()
				if next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				body(i)
			}
		}()
	}
	wg.Wait()
}

// forEachPrefix runs fn over every prefix, one pooled workerState per
// worker.
func (e *engine) forEachPrefix(prefixes []netx.Prefix, fn func(*workerState, netx.Prefix)) {
	e.forEachIndex(len(prefixes), func() (func(int), func()) {
		st := e.getState()
		return func(i int) { fn(st, prefixes[i]) },
			func() { e.putState(st) }
	})
}

func (e *engine) workerCount(items int) int {
	workers := e.opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// propagate runs one prefix to convergence in st (without capturing).
// It returns false when the activation budget is exhausted. The caller
// captures st into the engine's observable state afterwards.
func (e *engine) propagate(st *workerState, prefix netx.Prefix) bool {
	origin, ok := e.topo.PrefixOrigin[prefix]
	if !ok {
		st.reset()
		st.curPrefix = prefix
		st.originIdx = trackNone
		return true
	}
	oi := int32(e.idx[origin])
	st.reset()
	st.curPrefix = prefix
	st.originIdx = oi
	st.touch(oi)

	st.best[oi] = localRoute(&st.routes, prefix, origin)
	st.bestFrom[oi] = oi
	st.push(oi)

	return e.drain(st)
}

// drain runs the event-driven activation loop in st until quiescence or
// budget exhaustion (false).
func (e *engine) drain(st *workerState) bool {
	budget := e.budget * (len(e.asns) + e.topo.Graph.NumEdges())
	activations := 0
	converged := true
	for {
		u := st.pop()
		if u < 0 {
			break
		}
		activations++
		if activations > budget {
			converged = false
			break
		}
		st.inQueue[u] = false
		e.exportFrom(st, u)
	}
	// Activations accumulate on the pooled state (plain int, no
	// contention) and flush to the process counter in putState.
	st.statActivations += activations
	return converged
}

// exportFrom announces u's current best route to each neighbor (or
// withdraws a previous announcement no longer permitted).
func (e *engine) exportFrom(st *workerState, u int32) {
	best := st.best[u]
	for j, v := range e.nbrs[u] {
		relVtoU := e.rels[u][j] // what v is to u
		vslot := e.back[u][j]
		allowed := best != nil && e.shouldExport(u, v, relVtoU, best, st.curPrefix)
		if allowed {
			e.announceAt(st, u, v, vslot, relVtoU, best)
		} else {
			e.withdrawAt(st, u, v, vslot)
		}
	}
}

// shouldExport applies the export rules of Section 2.2.2 plus the
// topology's ground-truth export policies. prefix is the authoritative
// destination (route.Prefix may belong to the atom representative during
// fan-out re-convergence and is never consulted).
func (e *engine) shouldExport(u, v int32, relVtoU asgraph.Relationship, route *bgp.Route, prefix netx.Prefix) bool {
	uASN, vASN := e.asns[u], e.asns[v]

	// Ingress class of the route at u.
	var ingress asgraph.Relationship // relationship of the announcing neighbor to u
	if !route.IsLocal() {
		nh, _ := route.NextHopAS()
		ingress = e.topo.Graph.Rel(uASN, nh)
	}
	return exportAllowed(uASN, vASN, relVtoU, ingress, route, prefix, e.pols[u])
}

// exportAllowed is the policy core of shouldExport with the ingress
// classification already resolved, so the scenario engine can evaluate
// it against a pre-event relationship view or policy snapshot. prefix is
// passed explicitly (instead of read from the route) because atom
// fan-out re-converges member prefixes over state borrowed from their
// class representative.
func exportAllowed(uASN, vASN bgp.ASN, relVtoU, ingress asgraph.Relationship, route *bgp.Route, prefix netx.Prefix, pol *topogen.Policy) bool {
	// Well-known NO_EXPORT / NO_ADVERTISE.
	if route.Communities.Has(bgp.NoExport) || route.Communities.Has(bgp.NoAdvertise) {
		return false
	}
	// Scoped no-upstream community addressed to u: do not re-export to
	// providers or peers.
	if route.Communities.Has(bgp.MakeCommunity(uASN, topogen.NoUpstreamValue)) &&
		(relVtoU == asgraph.RelProvider || relVtoU == asgraph.RelPeer) {
		return false
	}

	// The standard valley-free export rules: to a provider or peer, only
	// own routes and customer routes.
	if relVtoU == asgraph.RelProvider || relVtoU == asgraph.RelPeer {
		if !route.IsLocal() && ingress != asgraph.RelCustomer && ingress != asgraph.RelSibling {
			return false
		}
	}

	if pol == nil {
		return true
	}

	// Origin-side selective announcement (Case 3 subsets).
	if route.IsLocal() && relVtoU == asgraph.RelProvider {
		if !pol.Export.AnnouncesToProvider(prefix, vASN) {
			return false
		}
	}
	// Origin-side withholding from a peer (Table 10).
	if route.IsLocal() && relVtoU == asgraph.RelPeer {
		if pol.Export.ExcludedFromPeer(prefix, vASN) {
			return false
		}
	}
	// Intermediate-AS selective announcement.
	if ingress == asgraph.RelCustomer && relVtoU == asgraph.RelProvider {
		if pol.Export.TransitExcluded(uASN, prefix, vASN) {
			return false
		}
	}
	// Provider-side aggregation of delegated specifics (Case 2): the
	// covering block is announced instead; the specific stays inside.
	if ingress == asgraph.RelCustomer && pol.Export.AggregateSpecifics[prefix] {
		return false
	}
	return true
}

// announce builds the route as seen at v and installs it (position
// resolved by binary search; the export loop uses announceAt).
func (e *engine) announce(st *workerState, u, v int32, relVtoU asgraph.Relationship, best *bgp.Route) {
	j := slotOf(e.nbrs[v], u)
	if j < 0 {
		return
	}
	e.announceAt(st, u, v, int32(j), relVtoU, best)
}

// announceAt builds the route as seen at v and installs it in the given
// slot of v's candidate row.
func (e *engine) announceAt(st *workerState, u, v, vslot int32, relVtoU asgraph.Relationship, best *bgp.Route) {
	uASN, vASN := e.asns[u], e.asns[v]
	// Loop prevention: v discards routes already carrying its ASN.
	if best.Path.Contains(vASN) || v == st.originIdx {
		e.withdrawAt(st, u, v, vslot)
		return
	}
	r := e.buildAnnouncement(uASN, vASN, relVtoU, best, st.curPrefix, e.pols[u], e.pols[v], st)
	st.touch(v)
	prev := st.cs.at(v, vslot)
	if prev != nil && sameRoute(prev, r) {
		return
	}
	st.cs.setAt(v, vslot, r)
	e.reselect(st, v)
}

// buildAnnouncement constructs the route v installs when u announces
// best over a session where v is relVtoU to u. The announcing and
// receiving policies are explicit so the scenario engine can rebuild
// pre-event routes against policy snapshots; prefix is the authoritative
// destination (best.Prefix may be the atom representative's). When st is
// non-nil the Route and Path are carved from its arenas and are only
// valid until the worker state resets; a nil st allocates from the heap
// (the reconstruction paths that memoize routes across prefixes).
func (e *engine) buildAnnouncement(uASN, vASN bgp.ASN, relVtoU asgraph.Relationship, best *bgp.Route, prefix netx.Prefix, polU, polV *topogen.Policy, st *workerState) *bgp.Route {
	comm := best.Communities
	if best.IsLocal() && polU != nil {
		if tagged, ok := polU.Export.NoUpstream[prefix]; ok && tagged == vASN {
			comm = addCommunity(st, comm, bgp.MakeCommunity(vASN, topogen.NoUpstreamValue))
		}
	}
	var path bgp.Path
	if st != nil {
		path = st.paths.prepend(uASN, best.Path)
	} else {
		path = best.Path.Prepend(uASN, 1)
	}

	// Import side at v: local preference and relationship tagging.
	var lp uint32 = bgp.DefaultLocalPref
	if !e.opts.IgnoreImportPolicy {
		lp = e.topo.EffectiveLocalPrefWith(polV, vASN, uASN, prefix)
	}
	if polV != nil && polV.Tagging != nil {
		if tag, ok := polV.Tagging.TagFor(relVtoU.Invert(), uASN); ok {
			// relVtoU is what v is to u; the tag classifies u from v's
			// point of view, hence the inversion.
			comm = addCommunity(st, comm, tag)
		}
	}

	var r *bgp.Route
	if st != nil {
		r = st.routes.alloc()
	} else {
		r = new(bgp.Route)
	}
	*r = bgp.Route{
		Prefix:      prefix,
		Path:        path,
		NextHop:     routerIP(uASN),
		LocalPref:   lp,
		Origin:      best.Origin,
		Communities: comm,
	}
	return r
}

func (e *engine) withdraw(st *workerState, u, v int32) {
	if st.seen[v] != st.version {
		return
	}
	if !st.cs.del(e.nbrs[v], v, u) {
		return
	}
	e.reselect(st, v)
}

func (e *engine) withdrawAt(st *workerState, u, v, vslot int32) {
	if st.seen[v] != st.version {
		return
	}
	if !st.cs.delAt(v, vslot) {
		return
	}
	e.reselect(st, v)
}

// reselect recomputes v's best route and schedules v when it changed.
// Candidates are scanned in ascending neighbor order (implicit in the
// CSR layout); because every candidate has a distinct next-hop AS, the
// deterministic-MED grouping of bgp.Best degenerates to this linear
// Compare scan, allocation-free.
func (e *engine) reselect(st *workerState, v int32) {
	var (
		newBest *bgp.Route
		from    = trackNone
	)
	st.cs.each(e.nbrs[v], v, func(u int32, r *bgp.Route) {
		if newBest == nil || bgp.Compare(r, newBest, e.depth) < 0 {
			newBest = r
			from = u
		}
	})
	if routesEquivalent(newBest, st.best[v]) {
		st.best[v] = newBest
		st.bestFrom[v] = from
		return
	}
	st.best[v] = newBest
	st.bestFrom[v] = from
	st.push(v)
}

// sameRoute compares every attribute except Prefix: within one prefix's
// convergence all routes share the logical destination, and during atom
// fan-out the borrowed representative state carries the representative's
// Prefix until capture rewrites it.
func sameRoute(a, b *bgp.Route) bool {
	return a.LocalPref == b.LocalPref &&
		a.MED == b.MED && a.Origin == b.Origin &&
		a.Path.Equal(b.Path) && len(a.Communities) == len(b.Communities) &&
		communitiesEqual(a.Communities, b.Communities)
}

func communitiesEqual(a, b bgp.Communities) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func routesEquivalent(a, b *bgp.Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return sameRoute(a, b)
}

// persistRoute deep-copies an arena-backed route into heap memory with
// the authoritative prefix, so it can outlive the worker state inside a
// vantage table. Communities are shared (immutable once built).
func persistRoute(r *bgp.Route, prefix netx.Prefix) *bgp.Route {
	c := *r
	c.Prefix = prefix
	c.Path = r.Path.Clone()
	return &c
}

// capture copies converged state from st into vantage tables, reach
// counters and (when tracking) the best forest, for the prefix st was
// converged for.
func (e *engine) capture(st *workerState, prefix netx.Prefix) {
	pi := e.prefixIdx[prefix]
	if e.track != nil {
		row := e.track[pi]
		// A row shared with an engine clone (or another atom member) is
		// replaced, not rewritten in place: capture overwrites every cell
		// anyway.
		if row == nil || (e.trackShared != nil && e.trackShared[pi]) {
			row = make([]int32, len(e.asns))
			e.track[pi] = row
			if e.trackShared != nil {
				e.trackShared[pi] = false
			}
		}
		for i := range row {
			row[i] = trackNone
		}
		for _, i := range st.touched {
			row[i] = st.bestFrom[i]
		}
	}
	reach := 0
	for _, i := range st.touched {
		if st.best[i] != nil || st.cs.count[i] > 0 {
			reach++
		}
		if !e.vantage[int(i)] {
			continue
		}
		e.captureVantage(st, i, prefix)
	}
	e.reachCounts[pi] = int64(reach)
}

// captureVantage installs AS i's converged candidates for prefix into
// its vantage table, deep-copying the arena-backed routes.
func (e *engine) captureVantage(st *workerState, i int32, prefix netx.Prefix) {
	st.capNbrs = st.capNbrs[:0]
	st.capRoutes = st.capRoutes[:0]
	var best *bgp.Route
	if st.best[i] != nil && st.best[i].IsLocal() {
		// Locally originated: the origin holds no learned candidates
		// (loop prevention rejects them), so the entry is the local route
		// keyed by the owner ASN.
		best = persistRoute(st.best[i], prefix)
		st.capNbrs = append(st.capNbrs, e.asns[i])
		st.capRoutes = append(st.capRoutes, best)
	} else {
		bestFrom := st.bestFrom[i]
		st.cs.each(e.nbrs[i], i, func(u int32, r *bgp.Route) {
			pr := persistRoute(r, prefix)
			st.capNbrs = append(st.capNbrs, e.asns[u])
			st.capRoutes = append(st.capRoutes, pr)
			if u == bestFrom {
				best = pr
			}
		})
	}
	if best == nil && len(st.capRoutes) > 0 {
		// bestFrom can dangle in mid-oscillation captures (budget
		// exhaustion); fall back to the linear selection the RIB itself
		// would run.
		for _, r := range st.capRoutes {
			if best == nil || bgp.Compare(r, best, e.depth) < 0 {
				best = r
			}
		}
	}
	slot := e.tables[int(i)]
	slot.mu.Lock()
	rib := slot.writable()
	if len(st.capNbrs) == 0 {
		rib.DropPrefix(prefix)
	} else {
		rib.InstallConverged(prefix, st.capNbrs, st.capRoutes, best)
	}
	slot.mu.Unlock()
}

// routerIP synthesizes a stable next-hop IP for an AS's border router.
func routerIP(asn bgp.ASN) uint32 {
	return 0x0a000000 | (uint32(asn)&0xffff)<<8 | 1 // 10.x.y.1
}

// localRoute is the locally originated route installed at an origin AS,
// carved from the arena when one is supplied.
func localRoute(arena *routeArena, prefix netx.Prefix, origin bgp.ASN) *bgp.Route {
	var r *bgp.Route
	if arena != nil {
		r = arena.alloc()
	} else {
		r = new(bgp.Route)
	}
	*r = bgp.Route{
		Prefix:    prefix,
		LocalPref: LocalRoutePref,
		Origin:    bgp.OriginIGP,
		NextHop:   routerIP(origin),
	}
	return r
}

// String renders run options for diagnostics.
func (o Options) String() string {
	return fmt.Sprintf("simulate{vantage=%d, depth=%v, noimport=%v}",
		len(o.VantagePoints), o.DecisionDepth, o.IgnoreImportPolicy)
}
