//go:build race

package simulate

// raceEnabled reports whether the race detector is compiled in. The
// exact-equality AllocsPerRun guards skip under -race: the detector's
// shadow-memory bookkeeping perturbs allocation counts by a handful of
// allocations per run, which the ±0 identity comparison cannot absorb.
const raceEnabled = true
