package simulate

import (
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Flat candidate-store unit tests and the allocation regression guard
// for the propagation loop's per-hop operations.

func storeFixture() (*candStore, [][]int32) {
	// Three ASes: 0–{1,2}, 1–{0,2}, 2–{0,1} (triangle).
	nbrs := [][]int32{{1, 2}, {0, 2}, {0, 1}}
	off := []int32{0, 2, 4, 6}
	cs := &candStore{}
	cs.init(off, 3)
	for v := int32(0); v < 3; v++ {
		cs.clear(v)
	}
	return cs, nbrs
}

func storeRoute(lp uint32) *bgp.Route {
	return &bgp.Route{Prefix: netx.MustParsePrefix("10.0.0.0/24"), Path: bgp.Path{100}, LocalPref: lp}
}

func TestCandStoreSlotsAndOverflow(t *testing.T) {
	cs, nbrs := storeFixture()
	r1, r2 := storeRoute(100), storeRoute(90)
	cs.set(nbrs[0], 0, 1, r1) // adjacency slot
	cs.set(nbrs[0], 0, 9, r2) // AS 9 not adjacent: overflow
	if got := cs.get(nbrs[0], 0, 1); got != r1 {
		t.Fatalf("slot get = %v", got)
	}
	if got := cs.get(nbrs[0], 0, 9); got != r2 {
		t.Fatalf("overflow get = %v", got)
	}
	if cs.count[0] != 2 {
		t.Fatalf("count = %d", cs.count[0])
	}
	// Iteration merges slots and overflow in ascending neighbor order.
	var order []int32
	cs.each(nbrs[0], 0, func(u int32, r *bgp.Route) { order = append(order, u) })
	if len(order) != 2 || order[0] != 1 || order[1] != 9 {
		t.Fatalf("each order = %v", order)
	}
	// Overflow ahead of a slot neighbor sorts first.
	cs.set(nbrs[2], 2, 0, r1)  // slot (neighbor 0)
	cs.set(nbrs[2], 2, -1, r2) // impossible index, but exercises ordering paths
	order = order[:0]
	cs.each(nbrs[2], 2, func(u int32, r *bgp.Route) { order = append(order, u) })
	if len(order) != 2 || order[0] != -1 || order[1] != 0 {
		t.Fatalf("merged order = %v", order)
	}
	// Deletion from both stores.
	if !cs.del(nbrs[0], 0, 9) || cs.del(nbrs[0], 0, 9) {
		t.Fatal("overflow delete misbehaved")
	}
	if !cs.del(nbrs[0], 0, 1) || cs.count[0] != 0 {
		t.Fatalf("slot delete misbehaved, count=%d", cs.count[0])
	}
	// clear resets a row wholesale.
	cs.set(nbrs[1], 1, 0, r1)
	cs.clear(1)
	if cs.count[1] != 0 || cs.get(nbrs[1], 1, 0) != nil {
		t.Fatal("clear left state behind")
	}
}

// TestCandStoreHotPathAllocFree: the slot-indexed accessors used by the
// export loop allocate nothing.
func TestCandStoreHotPathAllocFree(t *testing.T) {
	cs, nbrs := storeFixture()
	r := storeRoute(100)
	if avg := testing.AllocsPerRun(1000, func() {
		cs.setAt(0, 0, r)
		if cs.at(0, 0) != r {
			t.Fatal("lost route")
		}
		cs.each(nbrs[0], 0, func(int32, *bgp.Route) {})
		if !cs.delAt(0, 0) {
			t.Fatal("lost slot")
		}
	}); avg != 0 {
		t.Fatalf("hot path allocates %.1f per run", avg)
	}
}

// TestPathArenaPrepend: arena paths are value-correct and isolated.
func TestPathArenaPrepend(t *testing.T) {
	var a pathArena
	base := bgp.Path{3356, 7018}
	p1 := a.prepend(701, base)
	p2 := a.prepend(1239, p1)
	if p1.String() != "701 3356 7018" || p2.String() != "1239 701 3356 7018" {
		t.Fatalf("paths %q / %q", p1, p2)
	}
	// Arena reuse after reset recycles memory without reallocating.
	a.reset()
	if avg := testing.AllocsPerRun(100, func() {
		a.reset()
		if got := a.prepend(701, base); len(got) != 3 {
			t.Fatal("bad prepend")
		}
	}); avg != 0 {
		t.Fatalf("warm arena allocates %.1f per run", avg)
	}
}

// TestCommunityInterning: the worker-level intern cache returns
// canonical sets and never mutates its inputs.
func TestCommunityInterning(t *testing.T) {
	st := &workerState{}
	base := bgp.NewCommunities(bgp.MakeCommunity(100, 1))
	tag := bgp.MakeCommunity(200, 2)
	first := st.internAddCommunity(base, tag)
	second := st.internAddCommunity(base, tag)
	if &first[0] != &second[0] {
		t.Fatal("intern cache returned distinct values for the same key")
	}
	if !first.Has(tag) || !first.Has(bgp.MakeCommunity(100, 1)) || len(first) != 2 {
		t.Fatalf("interned set wrong: %v", first)
	}
	if len(base) != 1 {
		t.Fatalf("input mutated: %v", base)
	}
	// Adding a community already present returns the input unchanged.
	if got := addCommunity(st, first, tag); len(got) != 2 {
		t.Fatalf("idempotent add wrong: %v", got)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if r := st.internAddCommunity(base, tag); len(r) != 2 {
			t.Fatal("bad intern")
		}
	}); avg != 0 {
		t.Fatalf("warm intern allocates %.1f per run", avg)
	}
}
