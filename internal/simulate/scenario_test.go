package simulate

import (
	"bytes"
	"strings"
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
)

// buildTestTopo generates a small Internet and the simulation options
// the scenario tests share.
func buildTestTopo(t testing.TB, ases int, seed int64) (*topogen.Topology, Options) {
	t.Helper()
	topo, err := topogen.Generate(topogen.DefaultConfig(ases, seed))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	vantage := make([]bgp.ASN, 0, 10)
	for i, asn := range topo.Order {
		if i%17 == 0 && len(vantage) < 10 {
			vantage = append(vantage, asn)
		}
	}
	return topo, Options{VantagePoints: vantage}
}

// multihomedStub finds an AS with at least two providers and one
// originated prefix — the classic failover subject.
func multihomedStub(t testing.TB, topo *topogen.Topology) (bgp.ASN, []bgp.ASN, netx.Prefix) {
	t.Helper()
	for _, asn := range topo.Order {
		providers := topo.Graph.Providers(asn)
		info := topo.ASes[asn]
		if len(providers) >= 2 && len(info.Prefixes) > 0 {
			return asn, providers, info.Prefixes[0]
		}
	}
	t.Fatal("no multihomed stub with prefixes")
	return 0, nil, netx.Prefix{}
}

// somePeerEdge returns one peer-to-peer edge.
func somePeerEdge(t testing.TB, topo *topogen.Topology) (bgp.ASN, bgp.ASN) {
	t.Helper()
	for _, asn := range topo.Order {
		if peers := topo.Graph.Peers(asn); len(peers) > 0 {
			return asn, peers[0]
		}
	}
	t.Fatal("no peer edge")
	return 0, 0
}

// checkScenario applies sc incrementally on a fresh engine and compares
// the result bit-for-bit against a from-scratch simulation of the
// mutated topology.
func checkScenario(t *testing.T, topo *topogen.Topology, opts Options, sc Scenario) *Delta {
	t.Helper()
	eng, err := NewEngine(topo, opts)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	delta, err := eng.Apply(sc)
	if err != nil {
		t.Fatalf("apply %s: %v", sc.Name, err)
	}
	mutated := topo.Clone()
	if err := sc.ApplyToTopology(mutated); err != nil {
		t.Fatalf("mutate %s: %v", sc.Name, err)
	}
	want, err := Run(mutated, opts)
	if err != nil {
		t.Fatalf("full run %s: %v", sc.Name, err)
	}
	if diffs := DiffResults(eng.Result(), want); len(diffs) > 0 {
		for _, d := range diffs {
			t.Errorf("%s: %s", sc.Name, d)
		}
		t.Fatalf("%s: incremental result differs from full resimulation (%d diffs)", sc.Name, len(diffs))
	}
	return delta
}

// TestScenarioMatchesFullResim is the property test the tentpole rests
// on: for several seeds and every event type, incremental re-convergence
// must be bit-identical to simulating the mutated topology from scratch.
func TestScenarioMatchesFullResim(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		topo, opts := buildTestTopo(t, 150, seed)
		stub, providers, stubPrefix := multihomedStub(t, topo)
		peerA, peerB := somePeerEdge(t, topo)

		scenarios := []Scenario{
			{Name: "fail-stub-uplink", Events: []Event{FailLink(stub, providers[0])}},
			{Name: "fail-peer-link", Events: []Event{FailLink(peerA, peerB)}},
			{Name: "withdraw", Events: []Event{WithdrawPrefix(stubPrefix)}},
			{Name: "announce-new", Events: []Event{
				AnnouncePrefix(netx.MustParsePrefix("203.0.113.0/24"), stub),
			}},
			{Name: "local-pref-neighbor", Events: []Event{
				SetLocalPref(stub, providers[0], 40),
			}},
			{Name: "local-pref-prefix", Events: []Event{
				SetPrefixLocalPref(providers[0], stub, stubPrefix, 240),
			}},
			{Name: "sa-withhold", Events: []Event{
				ToggleProviderAnnouncement(stubPrefix, providers[1], false),
			}},
			{Name: "no-upstream-tag", Events: []Event{
				TagNoUpstream(stubPrefix, providers[0]),
			}},
			{Name: "batch-mixed", Events: []Event{
				FailLink(stub, providers[0]),
				SetLocalPref(peerA, peerB, 60),
				ToggleProviderAnnouncement(stubPrefix, providers[1], false),
			}},
		}
		for _, sc := range scenarios {
			checkScenario(t, topo, opts, sc)
		}
	}
}

// TestScenarioFailRestoreRoundTrip checks that failing a link and then
// restoring it (in a second Apply) returns the engine exactly to the
// base converged state, and that sequential Applies compose.
func TestScenarioFailRestoreRoundTrip(t *testing.T) {
	topo, opts := buildTestTopo(t, 150, 5)
	stub, providers, _ := multihomedStub(t, topo)

	base, err := Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Graph.Rel(a, b) returns what b is to a — RestoreLink's convention.
	rel := topo.Graph.Rel(stub, providers[0])
	if _, err := eng.Apply(Scenario{Events: []Event{FailLink(stub, providers[0])}}); err != nil {
		t.Fatal(err)
	}
	delta, err := eng.Apply(Scenario{Events: []Event{RestoreLink(stub, providers[0], rel)}})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffResults(eng.Result(), base); len(diffs) > 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("fail+restore did not return to base state (%d diffs)", len(diffs))
	}
	if delta.Recomputed == 0 {
		t.Fatal("restore recomputed nothing")
	}
}

// TestScenarioSequentialApplies drives three Applies on one engine and
// compares against a single from-scratch simulation with all mutations.
func TestScenarioSequentialApplies(t *testing.T) {
	topo, opts := buildTestTopo(t, 150, 7)
	stub, providers, stubPrefix := multihomedStub(t, topo)
	peerA, peerB := somePeerEdge(t, topo)

	eng, err := NewEngine(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	steps := []Scenario{
		{Events: []Event{FailLink(peerA, peerB)}},
		{Events: []Event{SetLocalPref(stub, providers[0], 45)}},
		{Events: []Event{TagNoUpstream(stubPrefix, providers[1])}},
	}
	mutated := topo.Clone()
	for _, sc := range steps {
		if _, err := eng.Apply(sc); err != nil {
			t.Fatal(err)
		}
		if err := sc.ApplyToTopology(mutated); err != nil {
			t.Fatal(err)
		}
	}
	want, err := Run(mutated, opts)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffResults(eng.Result(), want); len(diffs) > 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("sequential applies diverged (%d diffs)", len(diffs))
	}
}

// TestScenarioUntouchedPrefixesSkipped checks the incremental claim
// itself: a leaf link failure must not re-converge prefixes that never
// routed over it.
func TestScenarioUntouchedPrefixesSkipped(t *testing.T) {
	topo, opts := buildTestTopo(t, 150, 9)
	stub, providers, _ := multihomedStub(t, topo)
	eng, err := NewEngine(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := len(topo.PrefixOrigin)
	delta, err := eng.Apply(Scenario{Events: []Event{FailLink(stub, providers[0])}})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Recomputed >= total {
		t.Fatalf("failover recomputed all %d prefixes; expected a strict subset", total)
	}
	if delta.TotalPrefixes != total {
		t.Fatalf("TotalPrefixes = %d, want %d", delta.TotalPrefixes, total)
	}
}

// TestScenarioNilPolicyOrigin regresses the pre-event policy snapshot:
// when the edited AS had no policy at all, reconstruction must see the
// old nil, not the policy the edit creates.
func TestScenarioNilPolicyOrigin(t *testing.T) {
	for _, seed := range []int64{3, 4, 5} {
		topo, opts := buildTestTopo(t, 120, seed)
		stub, providers, stubPrefix := multihomedStub(t, topo)
		base := topo.Clone()
		delete(base.Policies, stub)
		scenarios := []Scenario{
			{Name: "no-upstream-nil-pol", Events: []Event{TagNoUpstream(stubPrefix, providers[0])}},
			{Name: "sa-withhold-nil-pol", Events: []Event{ToggleProviderAnnouncement(stubPrefix, providers[1], false)}},
		}
		for _, sc := range scenarios {
			checkScenario(t, base, opts, sc)
		}
	}
}

// TestScenarioAnnounceWithdrawBatch regresses the announce-then-
// withdraw batch: the net effect is nothing, so the delta must not
// fabricate shifts and the state must equal the base run.
func TestScenarioAnnounceWithdrawBatch(t *testing.T) {
	topo, opts := buildTestTopo(t, 80, 13)
	stub, _, _ := multihomedStub(t, topo)
	p := netx.MustParsePrefix("198.51.100.0/24")
	eng, err := NewEngine(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := eng.Apply(Scenario{Events: []Event{
		AnnouncePrefix(p, stub),
		WithdrawPrefix(p),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Recomputed != 0 || len(delta.Shifts) != 0 || len(delta.ReachDeltas) != 0 {
		t.Fatalf("announce+withdraw batch fabricated a delta: %+v", delta)
	}
	if diffs := DiffResults(eng.Result(), base); len(diffs) > 0 {
		t.Fatalf("announce+withdraw batch changed state: %v", diffs)
	}
}

// TestScenarioValidation exercises the all-or-nothing validation.
func TestScenarioValidation(t *testing.T) {
	topo, opts := buildTestTopo(t, 80, 11)
	eng, err := NewEngine(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Result()
	cases := []Scenario{
		{Name: "unknown-as", Events: []Event{FailLink(64999, 65000)}},
		{Name: "no-such-link", Events: []Event{FailLink(topo.Order[0], topo.Order[0])}},
		{Name: "bad-rel", Events: []Event{{Kind: EventLinkRestore, A: topo.Order[0], B: topo.Order[1], Rel: "frenemy"}}},
		{Name: "withdraw-missing", Events: []Event{WithdrawPrefix(netx.MustParsePrefix("198.51.100.0/24"))}},
		{Name: "unknown-kind", Events: []Event{{Kind: "meteor_strike"}}},
		{Name: "unknown-neighbor", Events: []Event{SetLocalPref(topo.Order[0], 64999, 50)}},
	}
	for _, sc := range cases {
		if _, err := eng.Apply(sc); err == nil {
			t.Errorf("%s: expected error", sc.Name)
		}
	}
	if diffs := DiffResults(eng.Result(), before); len(diffs) > 0 {
		t.Fatalf("failed validation mutated state: %v", diffs)
	}
}

// TestScenarioJSONRoundTrip checks the events.json wire format.
func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Scenario{
		Name: "maintenance",
		Events: []Event{
			FailLink(64512, 64513),
			RestoreLink(64512, 64513, asgraph.RelProvider),
			WithdrawPrefix(netx.MustParsePrefix("192.0.2.0/24")),
			AnnouncePrefix(netx.MustParsePrefix("192.0.2.0/24"), 64514),
			SetLocalPref(64512, 64515, 80),
			SetPrefixLocalPref(64512, 64515, netx.MustParsePrefix("198.51.100.0/24"), 130),
			ToggleProviderAnnouncement(netx.MustParsePrefix("192.0.2.0/24"), 64516, false),
			TagNoUpstream(netx.MustParsePrefix("192.0.2.0/24"), 64516),
		},
	}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Events without a prefix must not serialize a spurious "0.0.0.0/0".
	if s := buf.String(); strings.Contains(s, "0.0.0.0/0") {
		t.Fatalf("zero prefix leaked into JSON:\n%s", s)
	}
	got, err := LoadScenario(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sc.Name || len(got.Events) != len(sc.Events) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range sc.Events {
		if got.Events[i] != sc.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, got.Events[i], sc.Events[i])
		}
	}
}
