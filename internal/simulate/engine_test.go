package simulate

import (
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
)

// manualTopology builds a Topology by hand (bypassing the generator) so
// tests can pin exact scenarios from the paper's figures.
type manualBuilder struct {
	t    *testing.T
	topo *topogen.Topology
}

func newManual(t *testing.T) *manualBuilder {
	t.Helper()
	return &manualBuilder{
		t: t,
		topo: &topogen.Topology{
			Config:       topogen.DefaultConfig(10, 1),
			Graph:        asgraph.New(),
			ASes:         make(map[bgp.ASN]*topogen.ASInfo),
			PrefixOrigin: make(map[netx.Prefix]bgp.ASN),
			Policies:     make(map[bgp.ASN]*topogen.Policy),
		},
	}
}

func (b *manualBuilder) as(asn bgp.ASN, prefixes ...string) *manualBuilder {
	info := &topogen.ASInfo{ASN: asn, Name: "test", Tier: 3,
		AllocatedFrom: make(map[netx.Prefix]bgp.ASN)}
	for _, s := range prefixes {
		p := netx.MustParsePrefix(s)
		info.Prefixes = append(info.Prefixes, p)
		b.topo.PrefixOrigin[p] = asn
	}
	b.topo.ASes[asn] = info
	b.topo.Graph.AddNode(asn)
	b.topo.Policies[asn] = &topogen.Policy{
		AS: asn,
		Import: topogen.ImportPolicy{
			NeighborPref: make(map[bgp.ASN]uint32),
			PrefixPref:   make(map[bgp.ASN]map[netx.Prefix]uint32),
			Atypical:     make(map[bgp.ASN]bool),
		},
		Export: topogen.ExportPolicy{
			OriginProviders:    make(map[netx.Prefix]map[bgp.ASN]bool),
			NoUpstream:         make(map[netx.Prefix]bgp.ASN),
			AggregateSpecifics: make(map[netx.Prefix]bool),
		},
	}
	return b
}

func (b *manualBuilder) p2c(provider, customer bgp.ASN) *manualBuilder {
	if err := b.topo.Graph.AddProviderCustomer(provider, customer); err != nil {
		b.t.Fatal(err)
	}
	return b
}

func (b *manualBuilder) peer(x, y bgp.ASN) *manualBuilder {
	if err := b.topo.Graph.AddPeer(x, y); err != nil {
		b.t.Fatal(err)
	}
	return b
}

// defaultPrefs assigns the typical class-based localpref to every AS.
func (b *manualBuilder) defaultPrefs() *manualBuilder {
	for asn, pol := range b.topo.Policies {
		for _, nb := range b.topo.Graph.Neighbors(asn) {
			switch b.topo.Graph.Rel(asn, nb) {
			case asgraph.RelCustomer:
				pol.Import.NeighborPref[nb] = 100
			case asgraph.RelPeer:
				pol.Import.NeighborPref[nb] = 90
			case asgraph.RelProvider:
				pol.Import.NeighborPref[nb] = 80
			}
		}
	}
	return b
}

func (b *manualBuilder) build() *topogen.Topology {
	b.topo.Order = nil
	for _, asn := range b.topo.Graph.Nodes() {
		b.topo.Order = append(b.topo.Order, asn)
	}
	return b.topo
}

func run(t *testing.T, topo *topogen.Topology, vantage ...bgp.ASN) *Result {
	t.Helper()
	res, err := Run(topo, Options{VantagePoints: vantage, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unconverged) != 0 {
		t.Fatalf("unconverged prefixes: %v", res.Unconverged)
	}
	return res
}

// TestFigure3Scenario reproduces the paper's Figure 3: customer A
// announces prefix p to provider C but not to provider B. Provider D
// (B's provider, E's peer) must see p via its peer E rather than via the
// customer path D→B→A.
func TestFigure3Scenario(t *testing.T) {
	const (
		dAS = 10
		eAS = 20
		bAS = 30
		cAS = 40
		aAS = 50
	)
	b := newManual(t).
		as(dAS).as(eAS).as(bAS).as(cAS).as(aAS, "20.1.0.0/24")
	b.p2c(dAS, bAS).p2c(eAS, cAS).p2c(bAS, aAS).p2c(cAS, aAS).peer(dAS, eAS)
	b.defaultPrefs()
	topo := b.build()
	p := netx.MustParsePrefix("20.1.0.0/24")
	// A announces p only to C.
	topo.Policies[aAS].Export.OriginProviders[p] = map[bgp.ASN]bool{cAS: true}

	res := run(t, topo, dAS, bAS, eAS)

	dBest := res.Tables[dAS].Best(p)
	if dBest == nil {
		t.Fatal("D has no route to p")
	}
	nh, _ := dBest.NextHopAS()
	if nh != eAS {
		t.Fatalf("D's best route via %v, want peer E (%v); path %v", nh, bgp.ASN(eAS), dBest.Path)
	}
	// B receives no customer route from A ("No customer route to p is
	// received from customer B" in the paper's caption); it reaches p
	// through its provider D instead.
	if got := res.Tables[bAS].CandidateFrom(p, aAS); got != nil {
		t.Fatalf("B has a customer route from A: %v", got)
	}
	bBest := res.Tables[bAS].Best(p)
	if bBest == nil {
		t.Fatal("B should still reach p via its provider")
	}
	if nh, _ := bBest.NextHopAS(); nh != dAS {
		t.Fatalf("B's best via %v, want provider D", nh)
	}
	// E sees it via customer C.
	eBest := res.Tables[eAS].Best(p)
	if eBest == nil {
		t.Fatal("E has no route")
	}
	if nh, _ := eBest.NextHopAS(); nh != cAS {
		t.Fatalf("E's best via %v, want C", nh)
	}
}

// TestNoUpstreamCommunityScenario: A announces p to both providers but
// tags B with the scoped no-upstream community; D must again reach p via
// its peer E, while B itself holds a customer route.
func TestNoUpstreamCommunityScenario(t *testing.T) {
	const (
		dAS = 10
		eAS = 20
		bAS = 30
		cAS = 40
		aAS = 50
	)
	b := newManual(t).
		as(dAS).as(eAS).as(bAS).as(cAS).as(aAS, "20.1.0.0/24")
	b.p2c(dAS, bAS).p2c(eAS, cAS).p2c(bAS, aAS).p2c(cAS, aAS).peer(dAS, eAS)
	b.defaultPrefs()
	topo := b.build()
	p := netx.MustParsePrefix("20.1.0.0/24")
	topo.Policies[aAS].Export.NoUpstream = map[netx.Prefix]bgp.ASN{p: bAS}

	res := run(t, topo, dAS, bAS)

	bBest := res.Tables[bAS].Best(p)
	if bBest == nil {
		t.Fatal("B must hold the tagged customer route")
	}
	if !bBest.Communities.Has(bgp.MakeCommunity(bAS, topogen.NoUpstreamValue)) {
		t.Fatalf("tag missing on B's route: %v", bBest.Communities)
	}
	dBest := res.Tables[dAS].Best(p)
	if dBest == nil {
		t.Fatal("D has no route")
	}
	if nh, _ := dBest.NextHopAS(); nh != eAS {
		t.Fatalf("D's best via %v, want peer E", nh)
	}
}

// TestValleyFreePropagation: with every prefix announced everywhere, no
// vantage table may contain a valley path.
func TestValleyFreePropagation(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(150, 33))
	if err != nil {
		t.Fatal(err)
	}
	vantage := topo.Order[:20]
	res, err := Run(topo, Options{VantagePoints: vantage})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unconverged) != 0 {
		t.Fatalf("unconverged: %d", len(res.Unconverged))
	}
	checked := 0
	for _, asn := range vantage {
		rib := res.Tables[asn]
		for _, prefix := range rib.Prefixes() {
			for _, r := range rib.Candidates(prefix) {
				if r.IsLocal() {
					continue
				}
				if kind := topo.Graph.ClassifyPath(r.Path); kind == asgraph.PathValley {
					t.Fatalf("valley path %v in %v's table", r.Path, asn)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no routes checked")
	}
}

// TestCustomerRoutePreferredEndToEnd: on the generated topology, an AS
// holding both a customer and a non-customer candidate for the same
// prefix must (with typical preferences) select the customer route.
func TestCustomerRoutePreferredEndToEnd(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(150, 34))
	if err != nil {
		t.Fatal(err)
	}
	// Vantage on the largest Tier-1 for a rich table.
	t1 := topo.ASesByTier(1)
	res, err := Run(topo, Options{VantagePoints: t1})
	if err != nil {
		t.Fatal(err)
	}
	violations, opportunities := 0, 0
	for _, asn := range t1 {
		rib := res.Tables[asn]
		pol := topo.Policies[asn]
		for _, prefix := range rib.Prefixes() {
			cands := rib.Candidates(prefix)
			var hasCustomer bool
			for _, c := range cands {
				if nh, ok := c.NextHopAS(); ok && topo.Graph.Rel(asn, nh) == asgraph.RelCustomer && !pol.Import.Atypical[nh] {
					hasCustomer = true
				}
			}
			if !hasCustomer || len(cands) < 2 {
				continue
			}
			opportunities++
			best := rib.Best(prefix)
			nh, ok := best.NextHopAS()
			if !ok {
				continue
			}
			if topo.Graph.Rel(asn, nh) != asgraph.RelCustomer && !pol.Import.Atypical[nh] {
				// A non-customer best while an un-jittered typical
				// customer candidate exists: only possible through an
				// atypical assignment somewhere; count it.
				violations++
			}
		}
	}
	if opportunities == 0 {
		t.Fatal("no multi-candidate prefixes with customer routes observed")
	}
	if frac := float64(violations) / float64(opportunities); frac > 0.05 {
		t.Fatalf("customer-preference violations %.3f of %d", frac, opportunities)
	}
}

// TestAggregationSuppressesSpecific: a provider that aggregates a
// delegated specific must not re-export it; the rest of the world reaches
// only the covering block.
func TestAggregationSuppressesSpecific(t *testing.T) {
	const (
		top      = 10
		provider = 20
		cust     = 30
		other    = 40
	)
	b := newManual(t).
		as(top).as(provider, "20.2.0.0/17").as(cust, "20.2.128.0/24").as(other)
	b.p2c(top, provider).p2c(provider, cust).p2c(top, other)
	b.defaultPrefs()
	topo := b.build()
	specific := netx.MustParsePrefix("20.2.128.0/24")
	topo.ASes[cust].AllocatedFrom[specific] = provider
	topo.Policies[provider].Export.AggregateSpecifics[specific] = true

	res := run(t, topo, top, provider, other)

	if res.Tables[provider].Best(specific) == nil {
		t.Fatal("provider itself must hold the specific")
	}
	if res.Tables[top].Best(specific) != nil {
		t.Fatal("aggregated specific leaked above the provider")
	}
	if res.Tables[other].Best(specific) != nil {
		t.Fatal("aggregated specific leaked to sibling customer")
	}
	cover := netx.MustParsePrefix("20.2.0.0/17")
	if res.Tables[other].Best(cover) == nil {
		t.Fatal("covering block must be visible everywhere")
	}
}

// TestReachCountAndDeterminism: reach counts are positive, bounded by the
// AS count, and identical across runs and parallelism settings.
func TestReachCountAndDeterminism(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(120, 35))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(topo, Options{VantagePoints: topo.Order[:5], Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(topo, Options{VantagePoints: topo.Order[:5], Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	for p, c := range seq.ReachCount {
		if c <= 0 || c > len(topo.Order) {
			t.Fatalf("reach count %d for %v out of range", c, p)
		}
		if par.ReachCount[p] != c {
			t.Fatalf("parallel run disagrees on %v: %d vs %d", p, par.ReachCount[p], c)
		}
	}
	for _, asn := range topo.Order[:5] {
		a, b := seq.Tables[asn], par.Tables[asn]
		if a.Len() != b.Len() || a.NumRoutes() != b.NumRoutes() {
			t.Fatalf("tables differ at %v: %d/%d vs %d/%d", asn, a.Len(), a.NumRoutes(), b.Len(), b.NumRoutes())
		}
		for _, prefix := range a.Prefixes() {
			ab, bb := a.Best(prefix), b.Best(prefix)
			if (ab == nil) != (bb == nil) || (ab != nil && !ab.Path.Equal(bb.Path)) {
				t.Fatalf("best for %v differs at %v", prefix, asn)
			}
		}
	}
}

// TestRunSubsetMatchesFullRun: recomputing a subset after a policy change
// must produce the same tables as a from-scratch run.
func TestRunSubsetMatchesFullRun(t *testing.T) {
	topo, err := topogen.Generate(topogen.DefaultConfig(120, 36))
	if err != nil {
		t.Fatal(err)
	}
	vantage := topo.Order[:6]
	opts := Options{VantagePoints: vantage}
	base, err := Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one multihomed origin's policy by hand.
	var victim bgp.ASN
	var victimPrefix netx.Prefix
	for _, asn := range topo.Order {
		prov := topo.Graph.Providers(asn)
		if len(prov) >= 2 && len(topo.ASes[asn].Prefixes) > 0 {
			victim = asn
			victimPrefix = topo.ASes[asn].Prefixes[0]
			topo.Policies[asn].Export.OriginProviders[victimPrefix] = map[bgp.ASN]bool{prov[0]: true}
			break
		}
	}
	if victim == 0 {
		t.Fatal("no multihomed origin found")
	}

	sub, err := RunSubset(topo, opts, base, []netx.Prefix{victimPrefix})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, asn := range vantage {
		want, got := full.Tables[asn], sub.Tables[asn]
		if want.Len() != got.Len() {
			t.Fatalf("table size at %v: %d vs %d", asn, got.Len(), want.Len())
		}
		for _, prefix := range want.Prefixes() {
			wb, gb := want.Best(prefix), got.Best(prefix)
			if (wb == nil) != (gb == nil) || (wb != nil && !wb.Path.Equal(gb.Path)) {
				t.Fatalf("subset run diverges at %v / %v", asn, prefix)
			}
		}
	}
	if sub.ReachCount[victimPrefix] != full.ReachCount[victimPrefix] {
		t.Fatalf("reach count diverges: %d vs %d",
			sub.ReachCount[victimPrefix], full.ReachCount[victimPrefix])
	}
}

// TestIgnoreImportPolicyAblation: with import policy off, best routes
// follow shortest AS path, so a longer customer route loses.
func TestIgnoreImportPolicyAblation(t *testing.T) {
	const (
		vantageAS = 10
		peerAS    = 20
		custA     = 30
		custB     = 40
		origin    = 50
	)
	// vantage has a 3-hop customer chain to origin and a 2-hop peer path.
	b := newManual(t).
		as(vantageAS).as(peerAS).as(custA).as(custB).as(origin, "20.3.0.0/24")
	b.p2c(vantageAS, custA).p2c(custA, custB).p2c(custB, origin).
		peer(vantageAS, peerAS).p2c(peerAS, origin)
	b.defaultPrefs()
	topo := b.build()
	p := netx.MustParsePrefix("20.3.0.0/24")

	withPolicy := run(t, topo, vantageAS)
	nh, _ := withPolicy.Tables[vantageAS].Best(p).NextHopAS()
	if nh != custA {
		t.Fatalf("with policy: best via %v, want customer chain", nh)
	}

	res, err := Run(topo, Options{VantagePoints: []bgp.ASN{vantageAS}, IgnoreImportPolicy: true})
	if err != nil {
		t.Fatal(err)
	}
	nh, _ = res.Tables[vantageAS].Best(p).NextHopAS()
	if nh != peerAS {
		t.Fatalf("without policy: best via %v, want shorter peer path", nh)
	}
}

func TestOptionsString(t *testing.T) {
	s := Options{VantagePoints: []bgp.ASN{1, 2}}.String()
	if s == "" {
		t.Fatal("empty options string")
	}
}
