package simulate

import (
	"sync"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// Rollback journal. The sweep executor's dominant pattern is
// apply-scenario / emit / undo-scenario on a long-lived engine clone;
// before this journal existed the undo leg re-applied the inverse events
// and paid a full incremental pass. Checkpoint arms pre-image capture
// for the next Apply: every overwritten best-forest row, reach counter,
// unconverged mark and vantage-table entry is saved once, and link-event
// graph mutations record their inverses. Rollback then restores the
// exact pre-Apply state in time proportional to what the Apply touched.
//
// Journaling supports link-event batches (failures and restorations) —
// the scenario families that dominate sweeps. Batches with prefix or
// policy events mark the journal unsupported and Rollback reports false,
// telling the caller to fall back to its own strategy (the executor
// re-clones).

type journalRow struct {
	row    []int32
	shared bool
}

type journalEntryKey struct {
	vi     int
	prefix netx.Prefix
}

type journalEntry struct {
	key  journalEntryKey
	snap bgp.EntrySnapshot
}

type applyJournal struct {
	mu        sync.Mutex
	applied   bool
	supported bool
	// atomsStaleWas is the engine's pre-Apply atom-partition staleness,
	// restored on Rollback (the partition is exactly as valid at the
	// checkpoint as it was before).
	atomsStaleWas bool

	removed map[[2]int32]asgraph.Relationship // failed links to re-add (oriented like recon)
	added   [][2]int32                        // restored links to remove again

	rows      map[int]journalRow
	reach     map[int]int64
	unconvWas map[netx.Prefix]bool
	entries   []journalEntry
	entrySeen map[journalEntryKey]bool
}

// Checkpoint arms pre-image journaling for the next Apply, so Rollback
// can restore the engine to this exact state. Only one checkpoint is
// live at a time; arming again replaces the previous one.
func (en *Engine) Checkpoint() {
	mCheckpoints.Inc()
	en.e.journal = &applyJournal{
		supported: true,
		rows:      make(map[int]journalRow),
		reach:     make(map[int]int64),
		unconvWas: make(map[netx.Prefix]bool),
		entrySeen: make(map[journalEntryKey]bool),
	}
}

// Rollback undoes the Apply performed since the last Checkpoint and
// reports whether the engine is back at the checkpointed state. It
// returns true when no Apply consumed the checkpoint (nothing to undo)
// and false when the applied batch was not journalable (prefix or
// policy events) — the engine is then in the post-Apply state and the
// caller must recover by other means.
func (en *Engine) Rollback() bool {
	e := en.e
	j := e.journal
	e.journal = nil
	if j == nil || !j.applied {
		return j != nil // armed but unused: still at the checkpoint
	}
	if !j.supported {
		mRollbackRefused.Inc()
		return false
	}
	mRollbacks.Inc()
	e.atomsStale = j.atomsStaleWas

	// Undo the graph mutations and refresh adjacency.
	endpoints := make(map[int32]bool)
	for pair, rel := range j.removed {
		// rel is what pair[1] is to pair[0] (recon orientation).
		_ = e.topo.Graph.AddEdge(e.asns[pair[0]], e.asns[pair[1]], rel)
		endpoints[pair[0]] = true
		endpoints[pair[1]] = true
	}
	for _, pair := range j.added {
		e.topo.Graph.RemoveEdge(e.asns[pair[0]], e.asns[pair[1]])
		endpoints[pair[0]] = true
		endpoints[pair[1]] = true
	}
	if len(endpoints) > 0 {
		for i := range endpoints {
			e.rebuildAdjacency(i)
		}
		e.rebuildCSR()
	}

	// Restore forest rows, reach counters and unconverged marks.
	for pi, jr := range j.rows {
		e.track[pi] = jr.row
		if e.trackShared != nil {
			e.trackShared[pi] = jr.shared
		}
	}
	for pi, v := range j.reach {
		e.reachCounts[pi] = v
	}
	for p, was := range j.unconvWas {
		if was {
			en.unconv[p] = true
		} else {
			delete(en.unconv, p)
		}
	}

	// Restore vantage-table entries.
	for _, je := range j.entries {
		slot := e.tables[je.key.vi]
		slot.mu.Lock()
		slot.writable().RestoreEntry(je.key.prefix, je.snap)
		slot.mu.Unlock()
	}
	return true
}

// beginApply marks the armed journal consumed and records whether the
// batch is journalable. A second Apply under the same checkpoint marks
// the journal unsupported: pre-images of the first batch would mix with
// link deltas of the second, so Rollback must refuse rather than
// restore a hybrid state.
func (j *applyJournal) beginApply(events []Event, atomsStaleWas bool) {
	if j == nil {
		return
	}
	if j.applied {
		j.supported = false
		return
	}
	j.applied = true
	j.atomsStaleWas = atomsStaleWas
	for _, ev := range events {
		if ev.Kind != EventLinkFail && ev.Kind != EventLinkRestore {
			j.supported = false
			return
		}
	}
}

// recordLinks copies the recon link deltas (already oriented) into the
// journal.
func (j *applyJournal) recordLinks(rc *recon) {
	if j == nil || !j.supported {
		return
	}
	j.removed = make(map[[2]int32]asgraph.Relationship, len(rc.removed))
	for k, v := range rc.removed {
		j.removed[k] = v
	}
	for k := range rc.added {
		j.added = append(j.added, k)
	}
}

// rowPre records prefix pi's forest row and reach count before their
// first overwrite. Callers pass the current (pre-write) values; a shared
// row is referenced (its array is owned by a parent engine and never
// rewritten in place), an owned row is copied.
func (j *applyJournal) rowPre(pi int, row []int32, shared bool, reach int64) {
	if j == nil || !j.supported {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, done := j.rows[pi]; done {
		return
	}
	saved := row
	if !shared && row != nil {
		saved = append([]int32(nil), row...)
	}
	j.rows[pi] = journalRow{row: saved, shared: shared}
	j.reach[pi] = reach
}

// unconvPre records a prefix's pre-Apply unconverged membership. The
// caller serializes access to the unconverged set.
func (j *applyJournal) unconvPre(p netx.Prefix, was bool) {
	if j == nil || !j.supported {
		return
	}
	j.mu.Lock()
	if _, done := j.unconvWas[p]; !done {
		j.unconvWas[p] = was
	}
	j.mu.Unlock()
}

// entryPreTaken journals an already-captured entry snapshot (the caller
// holds the slot lock and must snapshot before overwriting).
func (j *applyJournal) entryPreTaken(vi int, prefix netx.Prefix, snap bgp.EntrySnapshot) {
	if j == nil || !j.supported {
		return
	}
	j.mu.Lock()
	key := journalEntryKey{vi: vi, prefix: prefix}
	if !j.entrySeen[key] {
		j.entrySeen[key] = true
		j.entries = append(j.entries, journalEntry{key: key, snap: snap})
	}
	j.mu.Unlock()
}

// entryPre records a vantage table entry before its first overwrite.
// snap must be taken under the slot lock by the caller.
func (j *applyJournal) entryPre(vi int, prefix netx.Prefix, snap func() bgp.EntrySnapshot) {
	if j == nil || !j.supported {
		return
	}
	j.mu.Lock()
	key := journalEntryKey{vi: vi, prefix: prefix}
	if j.entrySeen[key] {
		j.mu.Unlock()
		return
	}
	j.entrySeen[key] = true
	j.mu.Unlock()
	s := snap()
	j.mu.Lock()
	j.entries = append(j.entries, journalEntry{key: key, snap: s})
	j.mu.Unlock()
}
