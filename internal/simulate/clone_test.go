package simulate

import (
	"sync"
	"testing"
)

// TestCloneIsolation proves the copy-on-write contract: applying a
// scenario on a clone matches a from-scratch simulation of the mutated
// topology, while the base engine (and sibling clones) keep the
// pristine state bit for bit.
func TestCloneIsolation(t *testing.T) {
	topo, opts := buildTestTopo(t, 160, 5)
	base, err := NewEngine(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := Run(topo, opts)
	if err != nil {
		t.Fatal(err)
	}

	stub, providers, prefix := multihomedStub(t, topo)
	fail := Scenario{Name: "fail", Events: []Event{FailLink(stub, providers[0])}}
	withdraw := Scenario{Name: "withdraw", Events: []Event{WithdrawPrefix(prefix)}}

	c1 := base.Clone()
	c2 := base.Clone()
	if _, err := c1.Apply(fail); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Apply(withdraw); err != nil {
		t.Fatal(err)
	}

	// Each clone matches full resimulation of its own mutation.
	for _, tc := range []struct {
		eng *Engine
		sc  Scenario
	}{{c1, fail}, {c2, withdraw}} {
		mutated := topo.Clone()
		if err := tc.sc.ApplyToTopology(mutated); err != nil {
			t.Fatal(err)
		}
		want, err := Run(mutated, opts)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := DiffResults(tc.eng.Result(), want); len(diffs) > 0 {
			t.Fatalf("clone %s diverged from full resim: %v", tc.sc.Name, diffs[:min(3, len(diffs))])
		}
	}

	// The base engine never saw any of it.
	if diffs := DiffResults(base.Result(), baseline); len(diffs) > 0 {
		t.Fatalf("base engine corrupted by clone applies: %v", diffs[:min(3, len(diffs))])
	}
}

// TestCloneConcurrentApplies drives many clones of one base engine in
// parallel — the Session's what-if serving pattern. Run with -race.
func TestCloneConcurrentApplies(t *testing.T) {
	topo, opts := buildTestTopo(t, 120, 9)
	base, err := NewEngine(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	stub, providers, prefix := multihomedStub(t, topo)
	scenarios := []Scenario{
		{Name: "fail0", Events: []Event{FailLink(stub, providers[0])}},
		{Name: "fail1", Events: []Event{FailLink(stub, providers[1])}},
		{Name: "withdraw", Events: []Event{WithdrawPrefix(prefix)}},
		{Name: "pref", Events: []Event{SetLocalPref(providers[0], stub, 40)}},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(scenarios))
	for round := 0; round < 2; round++ {
		for _, sc := range scenarios {
			wg.Add(1)
			go func(sc Scenario) {
				defer wg.Done()
				eng := base.Clone()
				if _, err := eng.Apply(sc); err != nil {
					errs <- err
					return
				}
				if res := eng.Result(); len(res.Tables) == 0 {
					errs <- errEmptyResult
				}
			}(sc)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if diffs := DiffResults(base.Result(), base.Result()); len(diffs) > 0 {
		t.Fatalf("self-diff: %v", diffs)
	}
}

var errEmptyResult = &cloneTestError{"empty clone result"}

type cloneTestError struct{ msg string }

func (e *cloneTestError) Error() string { return e.msg }
