package simulate

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
	"github.com/policyscope/policyscope/obs"
)

// What-if scenario engine. An Engine wraps a converged simulation plus a
// per-prefix record of every AS's best next hop (the "best forest").
// Apply takes a batch of events — link failures and restorations, prefix
// withdrawals and re-originations, policy edits — mutates the engine's
// private topology clone, and re-converges *incrementally*: only
// sessions whose announcements actually change are re-evaluated, each
// affected prefix restarts the event-driven activation loop from its
// reconstructed pre-event state, and prefixes the events cannot disturb
// are never touched. The final state is bit-identical to simulating the
// mutated topology from scratch (scenario_test.go proves it property-
// style); the benchmark suite shows the incremental path is an order of
// magnitude faster than full resimulation for localized events.

// EventKind names a scenario event type.
type EventKind string

// Scenario event kinds.
const (
	// EventLinkFail tears down the session between A and B.
	EventLinkFail EventKind = "link_fail"
	// EventLinkRestore (re-)establishes a session between A and B with
	// relationship Rel (what B is to A).
	EventLinkRestore EventKind = "link_restore"
	// EventWithdraw removes Prefix from its origin: the origin stops
	// announcing and the prefix disappears from the routing system.
	EventWithdraw EventKind = "withdraw"
	// EventAnnounce (re-)originates Prefix at Origin.
	EventAnnounce EventKind = "announce"
	// EventLocalPref overrides the local preference AS assigns to routes
	// learned from Neighbor — for every prefix, or for just Prefix when
	// PerPrefix is set.
	EventLocalPref EventKind = "local_pref"
	// EventSAToggle edits origin-side selective announcement: Prefix is
	// announced to (Announce=true) or withheld from (false) Provider.
	EventSAToggle EventKind = "sa_toggle"
	// EventNoUpstream attaches (Provider != 0) or clears (Provider == 0)
	// the scoped no-upstream community on Prefix at its origin.
	EventNoUpstream EventKind = "no_upstream"
)

// Event is one scenario step. Which fields matter depends on Kind; the
// constructors below populate them correctly.
type Event struct {
	Kind EventKind `json:"kind"`
	// A, B are the link endpoints of link events.
	A bgp.ASN `json:"a,omitempty"`
	B bgp.ASN `json:"b,omitempty"`
	// Rel is the restored link's relationship: what B is to A
	// ("provider", "customer", "peer", "sibling").
	Rel string `json:"rel,omitempty"`
	// Prefix is the subject of prefix and per-prefix policy events.
	Prefix netx.Prefix `json:"prefix,omitempty"`
	// Origin is the AS (re-)originating Prefix for EventAnnounce.
	Origin bgp.ASN `json:"origin,omitempty"`
	// AS owns the import policy edited by EventLocalPref.
	AS bgp.ASN `json:"as,omitempty"`
	// Neighbor is the session whose routes EventLocalPref re-prices.
	Neighbor bgp.ASN `json:"neighbor,omitempty"`
	// Value is the overriding local preference.
	Value uint32 `json:"value,omitempty"`
	// PerPrefix restricts EventLocalPref to Prefix.
	PerPrefix bool `json:"per_prefix,omitempty"`
	// Provider scopes EventSAToggle / EventNoUpstream.
	Provider bgp.ASN `json:"provider,omitempty"`
	// Announce is the EventSAToggle direction.
	Announce bool `json:"announce,omitempty"`
}

// MarshalJSON omits the prefix field on events that don't use it
// (`omitempty` cannot drop a zero struct, and a spurious "0.0.0.0/0"
// on link events misleads anyone reading a scenario file).
func (ev Event) MarshalJSON() ([]byte, error) {
	type bare Event // no methods: avoids recursing into this marshaller
	shadow := struct {
		bare
		Prefix *netx.Prefix `json:"prefix,omitempty"`
	}{bare: bare(ev)}
	if ev.Prefix != (netx.Prefix{}) {
		shadow.Prefix = &ev.Prefix
	}
	return json.Marshal(shadow)
}

// FailLink tears down the A–B session.
func FailLink(a, b bgp.ASN) Event { return Event{Kind: EventLinkFail, A: a, B: b} }

// RestoreLink re-establishes the A–B session; rel is what b is to a.
func RestoreLink(a, b bgp.ASN, rel asgraph.Relationship) Event {
	return Event{Kind: EventLinkRestore, A: a, B: b, Rel: rel.String()}
}

// WithdrawPrefix stops the origination of prefix.
func WithdrawPrefix(prefix netx.Prefix) Event {
	return Event{Kind: EventWithdraw, Prefix: prefix}
}

// AnnouncePrefix (re-)originates prefix at origin.
func AnnouncePrefix(prefix netx.Prefix, origin bgp.ASN) Event {
	return Event{Kind: EventAnnounce, Prefix: prefix, Origin: origin}
}

// SetLocalPref overrides the preference as assigns to every route from
// neighbor.
func SetLocalPref(as, neighbor bgp.ASN, value uint32) Event {
	return Event{Kind: EventLocalPref, AS: as, Neighbor: neighbor, Value: value}
}

// SetPrefixLocalPref overrides the preference as assigns to routes for
// prefix learned from neighbor.
func SetPrefixLocalPref(as, neighbor bgp.ASN, prefix netx.Prefix, value uint32) Event {
	return Event{Kind: EventLocalPref, AS: as, Neighbor: neighbor, Prefix: prefix, Value: value, PerPrefix: true}
}

// ToggleProviderAnnouncement announces (announce=true) or withholds
// prefix to/from one of its origin's providers.
func ToggleProviderAnnouncement(prefix netx.Prefix, provider bgp.ASN, announce bool) Event {
	return Event{Kind: EventSAToggle, Prefix: prefix, Provider: provider, Announce: announce}
}

// TagNoUpstream attaches the scoped no-upstream community on prefix
// toward provider (provider=0 clears it).
func TagNoUpstream(prefix netx.Prefix, provider bgp.ASN) Event {
	return Event{Kind: EventNoUpstream, Prefix: prefix, Provider: provider}
}

// Scenario is a named batch of events applied atomically: all events
// take effect, then the network re-converges once.
type Scenario struct {
	Name   string  `json:"name,omitempty"`
	Events []Event `json:"events"`
}

// WriteJSON renders the scenario as indented JSON, the format
// LoadScenario reads.
func (sc Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// LoadScenario reads a Scenario from JSON.
func LoadScenario(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("simulate: bad scenario: %w", err)
	}
	return sc, nil
}

// LoadScenarioFile reads a Scenario from a JSON file.
func LoadScenarioFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer f.Close()
	return LoadScenario(f)
}

// ApplyToTopology mutates topo as the scenario's events dictate, without
// any simulation. Engine.Apply uses the same mutations internally; tests
// use this to cross-check incremental re-convergence against a from-
// scratch simulation of the mutated topology.
func (sc Scenario) ApplyToTopology(topo *topogen.Topology) error {
	for _, ev := range sc.Events {
		if _, err := applyEventToTopology(topo, ev); err != nil {
			return err
		}
	}
	return nil
}

// applyEventToTopology performs one event's mutation, returning the
// relationship a removed or added edge carries (what B is to A).
func applyEventToTopology(topo *topogen.Topology, ev Event) (asgraph.Relationship, error) {
	switch ev.Kind {
	case EventLinkFail:
		rel, ok := topo.Graph.RemoveEdge(ev.A, ev.B)
		if !ok {
			return asgraph.RelNone, fmt.Errorf("simulate: %v: no link %v-%v", ev.Kind, ev.A, ev.B)
		}
		return rel, nil
	case EventLinkRestore:
		rel, err := asgraph.ParseRelationship(ev.Rel)
		if err != nil || rel == asgraph.RelNone {
			return asgraph.RelNone, fmt.Errorf("simulate: %v %v-%v: bad relationship %q", ev.Kind, ev.A, ev.B, ev.Rel)
		}
		if err := topo.Graph.AddEdge(ev.A, ev.B, rel); err != nil {
			return asgraph.RelNone, fmt.Errorf("simulate: %v: %w", ev.Kind, err)
		}
		return rel, nil
	case EventWithdraw:
		if !topo.RemovePrefix(ev.Prefix) {
			return asgraph.RelNone, fmt.Errorf("simulate: %v: %v is not originated", ev.Kind, ev.Prefix)
		}
	case EventAnnounce:
		if !topo.AddPrefix(ev.Prefix, ev.Origin) {
			return asgraph.RelNone, fmt.Errorf("simulate: %v: cannot originate %v at %v", ev.Kind, ev.Prefix, ev.Origin)
		}
	case EventLocalPref:
		pol := topo.Policies[ev.AS]
		if pol == nil {
			// Mirror SetAnnounceToProvider: a policy-less AS grows one on
			// first edit, so a mid-batch event can never fail after
			// earlier events already mutated the topology.
			pol = &topogen.Policy{AS: ev.AS}
			topo.Policies[ev.AS] = pol
		}
		if ev.PerPrefix {
			pol.EnsureOverride().SetPrefix(ev.Neighbor, ev.Prefix, ev.Value)
		} else {
			pol.EnsureOverride().SetNeighbor(ev.Neighbor, ev.Value)
		}
	case EventSAToggle:
		origin, ok := topo.PrefixOrigin[ev.Prefix]
		if !ok {
			return asgraph.RelNone, fmt.Errorf("simulate: %v: %v is not originated", ev.Kind, ev.Prefix)
		}
		topo.SetAnnounceToProvider(origin, ev.Prefix, ev.Provider, ev.Announce)
	case EventNoUpstream:
		origin, ok := topo.PrefixOrigin[ev.Prefix]
		if !ok {
			return asgraph.RelNone, fmt.Errorf("simulate: %v: %v is not originated", ev.Kind, ev.Prefix)
		}
		topo.SetNoUpstream(origin, ev.Prefix, ev.Provider)
	default:
		return asgraph.RelNone, fmt.Errorf("simulate: unknown event kind %q", ev.Kind)
	}
	return asgraph.RelNone, nil
}

// PrefixShift summarizes how one re-converged prefix's catchment moved:
// how many ASes changed the neighbor their best route uses, and how many
// lost or gained reachability outright.
type PrefixShift struct {
	Prefix netx.Prefix
	Origin bgp.ASN
	// Shifted counts ASes whose best next hop changed (including to or
	// from "no route").
	Shifted int
	// Lost / Gained count ASes that lost or gained any route.
	Lost, Gained int
	// Vantage lists the vantage-point ASes whose best next hop for the
	// prefix changed, ascending. Sweep aggregation builds its
	// per-vantage summaries from it.
	Vantage []bgp.ASN `json:",omitempty"`
}

// ReachDelta records a prefix whose AS-level reachability changed.
type ReachDelta struct {
	Prefix        netx.Prefix
	Before, After int
}

// Delta is the observable effect of one Apply.
type Delta struct {
	// Recomputed counts prefixes whose routing actually changed and were
	// re-converged. TotalPrefixes is the post-event prefix count.
	Recomputed    int
	TotalPrefixes int
	// Shifts lists every prefix with at least one changed best next hop,
	// most-shifted first.
	Shifts []PrefixShift
	// ReachDeltas lists prefixes whose reach count changed, biggest
	// absolute change first.
	ReachDeltas []ReachDelta
}

// ShiftedASes sums Shifted over all shifts.
func (d *Delta) ShiftedASes() int {
	n := 0
	for _, s := range d.Shifts {
		n += s.Shifted
	}
	return n
}

// Engine is a converged simulation that accepts scenario events and
// re-converges incrementally. It owns a private clone of the topology it
// was built from; callers may keep using the original freely. Engine is
// not safe for concurrent use: Apply and Clone must not overlap on the
// same engine (concurrent Clone calls of a quiescent engine are fine,
// and the clones themselves are fully independent afterwards).
type Engine struct {
	e       *engine
	topo    *topogen.Topology
	opts    Options
	unconv  map[netx.Prefix]bool
	cloneMu sync.Mutex
}

// NewEngine runs a full simulation of topo and retains the per-prefix
// best forest that incremental re-convergence needs. Memory cost beyond
// a plain Run is 4 bytes per (prefix, AS) pair.
func NewEngine(topo *topogen.Topology, opts Options) (*Engine, error) {
	clone := topo.Clone()
	e := newEngine(clone, opts)
	e.track = make([][]int32, len(e.prefixes))
	unconverged := e.runPrefixes(e.prefixes)
	eng := &Engine{e: e, topo: clone, opts: opts, unconv: make(map[netx.Prefix]bool)}
	for _, p := range unconverged {
		eng.unconv[p] = true
	}
	return eng, nil
}

// Topology exposes the engine's current (possibly mutated) topology.
// Treat it as read-only; mutate it only through Apply.
func (en *Engine) Topology() *topogen.Topology { return en.topo }

// Result builds the current converged state in the same shape Run
// returns. Tables are shared with the engine: they are updated in place
// by subsequent Apply calls.
func (en *Engine) Result() *Result {
	return en.e.buildResult(en.unconvergedList())
}

// UnconvergedCount reports how many prefixes hit the activation budget
// without converging. The sweep executor compares it against the base
// engine's count to decide whether a rollback restored a clean state.
func (en *Engine) UnconvergedCount() int { return len(en.unconv) }

// SetParallelism rebounds the per-Apply prefix worker count (0 =
// GOMAXPROCS). A sweep executor sets its worker clones to 1 so the
// parallelism lives across scenarios, not inside each one.
func (en *Engine) SetParallelism(n int) {
	en.opts.Parallelism = n
	en.e.opts.Parallelism = n
}

func (en *Engine) unconvergedList() []netx.Prefix {
	out := make([]netx.Prefix, 0, len(en.unconv))
	for p := range en.unconv {
		out = append(out, p)
	}
	netx.SortPrefixes(out)
	return out
}

// Apply mutates the engine's topology as the scenario dictates and
// re-converges incrementally. It returns a Delta describing every
// routing change. On an event validation error the engine state is
// unchanged; events are validated before any mutation.
func (en *Engine) Apply(sc Scenario) (*Delta, error) {
	e := en.e
	if err := en.validate(sc); err != nil {
		return nil, err
	}
	mApplies.Inc()
	var applyStart time.Time
	if obs.Enabled() {
		applyStart = time.Now()
	}
	defer observeApplyEnd(applyStart)
	// Scenario events can change origins, policies and adjacency; the
	// cold-convergence atom partition no longer describes this engine
	// (a journaled Rollback restores the pre-Apply staleness).
	e.journal.beginApply(sc.Events, e.atomsStale)
	e.atomsStale = true

	rc := &recon{
		e:       e,
		removed: make(map[[2]int32]asgraph.Relationship),
		added:   make(map[[2]int32]bool),
		oldPols: make(map[int32]*topogen.Policy),
	}
	delta := &Delta{}

	// Snapshot the pre-event policies reconstruction will need.
	for _, ev := range sc.Events {
		var owner bgp.ASN
		switch ev.Kind {
		case EventLocalPref:
			owner = ev.AS
		case EventSAToggle, EventNoUpstream:
			owner = en.topo.PrefixOrigin[ev.Prefix]
		default:
			continue
		}
		oi := int32(e.idx[owner])
		if _, done := rc.oldPols[oi]; !done {
			// Record presence even for a nil policy: reconstruction must
			// see the pre-event nil, not the policy the edit creates.
			if pol := e.pols[oi]; pol != nil {
				rc.oldPols[oi] = pol.CloneDeep()
			} else {
				rc.oldPols[oi] = nil
			}
		}
	}

	// Mutate the topology, recording link deltas for reconstruction, and
	// handle prefix removal/addition bookkeeping.
	var added []netx.Prefix
	linkEvents := false
	addedSet := make(map[netx.Prefix]bool)
	for _, ev := range sc.Events {
		switch ev.Kind {
		case EventWithdraw:
			if addedSet[ev.Prefix] {
				// Announced earlier in this batch and never converged:
				// net effect is nothing, so just unwind the bookkeeping.
				if _, err := applyEventToTopology(en.topo, ev); err != nil {
					return nil, err
				}
				en.removePrefixState(ev.Prefix)
				delete(addedSet, ev.Prefix)
				for i, p := range added {
					if p == ev.Prefix {
						added = append(added[:i], added[i+1:]...)
						break
					}
				}
				continue
			}
			// Record the catchment loss before the state disappears.
			pi := e.prefixIdx[ev.Prefix]
			lost := 0
			var vantage []bgp.ASN
			for i, f := range e.track[pi] {
				if f != trackNone {
					lost++
					if e.vantage[i] {
						vantage = append(vantage, e.asns[i])
					}
				}
			}
			before := int(e.reachCounts[pi])
			if lost > 0 {
				delta.Shifts = append(delta.Shifts, PrefixShift{
					Prefix: ev.Prefix, Origin: en.topo.PrefixOrigin[ev.Prefix],
					Shifted: lost, Lost: lost, Vantage: vantage,
				})
			}
			if before != 0 {
				delta.ReachDeltas = append(delta.ReachDeltas, ReachDelta{Prefix: ev.Prefix, Before: before})
			}
			if _, err := applyEventToTopology(en.topo, ev); err != nil {
				return nil, err
			}
			en.removePrefixState(ev.Prefix)
			delta.Recomputed++
		case EventAnnounce:
			if _, err := applyEventToTopology(en.topo, ev); err != nil {
				return nil, err
			}
			en.addPrefixState(ev.Prefix)
			added = append(added, ev.Prefix)
			addedSet[ev.Prefix] = true
		default:
			rel, err := applyEventToTopology(en.topo, ev)
			if err != nil {
				return nil, err
			}
			ai, bi := int32(e.idx[ev.A]), int32(e.idx[ev.B])
			switch ev.Kind {
			case EventLinkFail:
				rc.removed[edgePair(ai, bi)] = orient(rel, ai, bi)
				e.rebuildAdjacency(ai)
				e.rebuildAdjacency(bi)
				linkEvents = true
			case EventLinkRestore:
				rc.added[edgePair(ai, bi)] = true
				e.rebuildAdjacency(ai)
				e.rebuildAdjacency(bi)
				linkEvents = true
			}
		}
	}
	if linkEvents {
		e.rebuildCSR()
	}
	e.journal.recordLinks(rc)
	// Policy edits mutate Policy values in place, but refresh the
	// engine's pointers anyway in case a policy object was created.
	for i, asn := range e.asns {
		e.pols[i] = en.topo.Policies[asn]
	}

	// Newly originated prefixes converge from scratch.
	if len(added) > 0 {
		for _, p := range added {
			unconverged := e.runPrefixes([]netx.Prefix{p})
			for _, u := range unconverged {
				en.unconv[u] = true
			}
			pi := e.prefixIdx[p]
			gained := 0
			var vantage []bgp.ASN
			for i, f := range e.track[pi] {
				if f != trackNone {
					gained++
					if e.vantage[i] {
						vantage = append(vantage, e.asns[i])
					}
				}
			}
			delta.Shifts = append(delta.Shifts, PrefixShift{
				Prefix: p, Origin: en.topo.PrefixOrigin[p],
				Shifted: gained, Gained: gained, Vantage: vantage,
			})
			if after := int(e.reachCounts[pi]); after != 0 {
				delta.ReachDeltas = append(delta.ReachDeltas, ReachDelta{Prefix: p, After: after})
			}
			delta.Recomputed++
		}
	}

	// Incremental pass over every pre-existing prefix: re-evaluate only
	// the sessions the events changed, re-converging from reconstructed
	// pre-event state when anything actually differs.
	skip := make(map[netx.Prefix]bool, len(added))
	for _, p := range added {
		skip[p] = true
	}
	en.runIncremental(sc.Events, rc, skip, delta)

	delta.TotalPrefixes = len(e.prefixes)
	sort.Slice(delta.Shifts, func(i, j int) bool {
		if delta.Shifts[i].Shifted != delta.Shifts[j].Shifted {
			return delta.Shifts[i].Shifted > delta.Shifts[j].Shifted
		}
		return delta.Shifts[i].Prefix.Compare(delta.Shifts[j].Prefix) < 0
	})
	sort.Slice(delta.ReachDeltas, func(i, j int) bool {
		di := abs(delta.ReachDeltas[i].After - delta.ReachDeltas[i].Before)
		dj := abs(delta.ReachDeltas[j].After - delta.ReachDeltas[j].Before)
		if di != dj {
			return di > dj
		}
		return delta.ReachDeltas[i].Prefix.Compare(delta.ReachDeltas[j].Prefix) < 0
	})
	return delta, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// validate checks every event against the engine's current state before
// anything mutates, so a bad batch leaves the engine untouched.
func (en *Engine) validate(sc Scenario) error {
	topo := en.topo
	// Track prefix existence through the batch so withdraw-then-announce
	// sequences validate correctly.
	exists := make(map[netx.Prefix]bool)
	has := func(p netx.Prefix) bool {
		if v, ok := exists[p]; ok {
			return v
		}
		_, ok := topo.PrefixOrigin[p]
		return ok
	}
	// Link state is tracked through the batch so fail-then-restore
	// sequences validate correctly.
	linkUp := make(map[[2]bgp.ASN]bool)
	linkKey := func(a, b bgp.ASN) [2]bgp.ASN {
		if a < b {
			return [2]bgp.ASN{a, b}
		}
		return [2]bgp.ASN{b, a}
	}
	up := func(a, b bgp.ASN) bool {
		if v, ok := linkUp[linkKey(a, b)]; ok {
			return v
		}
		return topo.Graph.Rel(a, b) != asgraph.RelNone
	}
	for _, ev := range sc.Events {
		switch ev.Kind {
		case EventLinkFail, EventLinkRestore:
			for _, asn := range []bgp.ASN{ev.A, ev.B} {
				if _, ok := en.e.idx[asn]; !ok {
					return fmt.Errorf("simulate: %v: unknown AS %v", ev.Kind, asn)
				}
			}
			if ev.A == ev.B {
				return fmt.Errorf("simulate: %v: self link on %v", ev.Kind, ev.A)
			}
			if ev.Kind == EventLinkFail {
				if !up(ev.A, ev.B) {
					return fmt.Errorf("simulate: %v: no link %v-%v", ev.Kind, ev.A, ev.B)
				}
				linkUp[linkKey(ev.A, ev.B)] = false
			} else {
				if rel, err := asgraph.ParseRelationship(ev.Rel); err != nil || rel == asgraph.RelNone {
					return fmt.Errorf("simulate: %v %v-%v: bad relationship %q", ev.Kind, ev.A, ev.B, ev.Rel)
				}
				if up(ev.A, ev.B) {
					return fmt.Errorf("simulate: %v: link %v-%v already up", ev.Kind, ev.A, ev.B)
				}
				linkUp[linkKey(ev.A, ev.B)] = true
			}
		case EventWithdraw:
			if !has(ev.Prefix) {
				return fmt.Errorf("simulate: %v: %v is not originated", ev.Kind, ev.Prefix)
			}
			exists[ev.Prefix] = false
		case EventAnnounce:
			if has(ev.Prefix) {
				return fmt.Errorf("simulate: %v: %v is already originated", ev.Kind, ev.Prefix)
			}
			if _, ok := en.e.idx[ev.Origin]; !ok {
				return fmt.Errorf("simulate: %v: unknown AS %v", ev.Kind, ev.Origin)
			}
			exists[ev.Prefix] = true
		case EventLocalPref:
			if _, ok := en.e.idx[ev.AS]; !ok {
				return fmt.Errorf("simulate: %v: unknown AS %v", ev.Kind, ev.AS)
			}
			if _, ok := en.e.idx[ev.Neighbor]; !ok {
				return fmt.Errorf("simulate: %v: unknown neighbor %v", ev.Kind, ev.Neighbor)
			}
		case EventSAToggle, EventNoUpstream:
			if !has(ev.Prefix) {
				return fmt.Errorf("simulate: %v: %v is not originated", ev.Kind, ev.Prefix)
			}
		default:
			return fmt.Errorf("simulate: unknown event kind %q", ev.Kind)
		}
	}
	return nil
}

// removePrefixState erases a withdrawn prefix from tables, reach counts
// and the best forest, compacting the engine's prefix indexing.
func (en *Engine) removePrefixState(prefix netx.Prefix) {
	e := en.e
	for _, slot := range e.tables {
		slot.mu.Lock()
		if slot.rib.Has(prefix) {
			slot.writable().DropPrefix(prefix)
		}
		slot.mu.Unlock()
	}
	pi, ok := e.prefixIdx[prefix]
	if !ok {
		return
	}
	last := len(e.prefixes) - 1
	e.prefixes[pi] = e.prefixes[last]
	e.prefixes = e.prefixes[:last]
	e.reachCounts[pi] = e.reachCounts[last]
	e.reachCounts = e.reachCounts[:last]
	e.track[pi] = e.track[last]
	e.track = e.track[:last]
	if e.trackShared != nil {
		e.trackShared[pi] = e.trackShared[last]
		e.trackShared = e.trackShared[:last]
	}
	delete(e.prefixIdx, prefix)
	if pi < last {
		e.prefixIdx[e.prefixes[pi]] = pi
	}
	delete(en.unconv, prefix)
}

// addPrefixState registers a newly originated prefix in the engine's
// indexing; its state is produced by the full-convergence pass.
func (en *Engine) addPrefixState(prefix netx.Prefix) {
	e := en.e
	e.prefixIdx[prefix] = len(e.prefixes)
	e.prefixes = append(e.prefixes, prefix)
	e.reachCounts = append(e.reachCounts, 0)
	e.track = append(e.track, nil)
	if e.trackShared != nil {
		e.trackShared = append(e.trackShared, false)
	}
}

// rebuildAdjacency refreshes one AS's neighbor arrays from the (mutated)
// graph. Callers must refresh the CSR layout (rebuildCSR) once all
// endpoints of a batch are rebuilt.
func (e *engine) rebuildAdjacency(i int32) {
	asn := e.asns[i]
	nbs := e.topo.Graph.Neighbors(asn)
	e.nbrs[i] = make([]int32, len(nbs))
	e.rels[i] = make([]asgraph.Relationship, len(nbs))
	for j, nb := range nbs {
		e.nbrs[i][j] = int32(e.idx[nb])
		e.rels[i][j] = e.topo.Graph.Rel(asn, nb)
	}
}

// edgePair canonicalizes an undirected AS-index pair.
func edgePair(a, b int32) [2]int32 {
	if a < b {
		return [2]int32{a, b}
	}
	return [2]int32{b, a}
}

// orient stores rel (what B is to A) normalized to the canonical pair
// order used by edgePair.
func orient(rel asgraph.Relationship, a, b int32) asgraph.Relationship {
	if a < b {
		return rel
	}
	return rel.Invert()
}

// recon is the Apply-scoped context for reconstructing pre-event state:
// which edges this batch removed or added (with the removed edges'
// relationships) and the pre-event policies of edited ASes.
type recon struct {
	e       *engine
	removed map[[2]int32]asgraph.Relationship // value: what pair[1] is to pair[0]
	added   map[[2]int32]bool
	oldPols map[int32]*topogen.Policy
}

// curRel reads the current relationship of v to u off the engine's
// adjacency arrays (equivalent to topo.Graph.Rel but without the edge
// map lookups; rebuildAdjacency keeps the arrays current).
func (e *engine) curRel(u, v int32) asgraph.Relationship {
	if j := slotOf(e.nbrs[u], v); j >= 0 {
		return e.rels[u][j]
	}
	return asgraph.RelNone
}

// relOld returns what v was to u before this batch's link events.
func (rc *recon) relOld(u, v int32) asgraph.Relationship {
	if len(rc.removed) > 0 || len(rc.added) > 0 {
		key := edgePair(u, v)
		if rel, ok := rc.removed[key]; ok {
			if key[0] == u {
				return rel
			}
			return rel.Invert()
		}
		if rc.added[key] {
			return asgraph.RelNone
		}
	}
	return rc.e.curRel(u, v)
}

// relAny returns the current relationship, falling back to the removed-
// edge record (used to classify the ingress of not-yet-reprocessed old
// routes whose next hop crossed a failed link).
func (rc *recon) relAny(u, v int32) asgraph.Relationship {
	if rel := rc.e.curRel(u, v); rel != asgraph.RelNone {
		return rel
	}
	key := edgePair(u, v)
	if rel, ok := rc.removed[key]; ok {
		if key[0] == u {
			return rel
		}
		return rel.Invert()
	}
	return asgraph.RelNone
}

// polOld returns AS i's pre-event policy.
func (rc *recon) polOld(i int32) *topogen.Policy {
	if p, ok := rc.oldPols[i]; ok {
		return p
	}
	return rc.e.pols[i]
}

// prefixRecon reconstructs one prefix's pre-event routing state from the
// best forest: every AS's best route is its parent's best route pushed
// through the (pre-event) session policies, recursively down to the
// origin's local route.
type prefixRecon struct {
	rc        *recon
	st        *workerState
	prefix    netx.Prefix
	originIdx int32
	row       []int32
}

// newPrefixRecon binds the reconstruction to st: rebuilt routes come
// from st's arenas and the memo lives in its version-stamped arrays, so
// scanning a prefix allocates nothing. st must already be reset for
// this prefix.
func newPrefixRecon(rc *recon, st *workerState, prefix netx.Prefix) *prefixRecon {
	e := rc.e
	return &prefixRecon{
		rc:        rc,
		st:        st,
		prefix:    prefix,
		originIdx: int32(e.idx[e.topo.PrefixOrigin[prefix]]),
		row:       e.track[e.prefixIdx[prefix]],
	}
}

// bestOld rebuilds AS u's pre-event best route for the prefix.
func (pr *prefixRecon) bestOld(u int32) *bgp.Route {
	return pr.bestOldDepth(u, 0)
}

func (pr *prefixRecon) bestOldDepth(u int32, depth int) *bgp.Route {
	f := pr.row[u]
	if f == trackNone {
		return nil
	}
	if pr.st.memoSeen[u] == pr.st.version {
		return pr.st.memoRoute[u]
	}
	// A converged forest is acyclic with chains no longer than the AS
	// count; anything deeper means the row was captured mid-oscillation
	// (a budget-exhausted prefix). Treat it as no route instead of
	// recursing forever.
	if depth > len(pr.rc.e.asns) {
		return nil
	}
	var r *bgp.Route
	if f == u {
		r = localRoute(&pr.st.routes, pr.prefix, pr.rc.e.asns[u])
	} else {
		parentBest := pr.bestOldDepth(f, depth+1)
		if parentBest == nil {
			// A forest invariant violation lands here; treat as no
			// route rather than corrupting downstream state.
			return nil
		}
		e := pr.rc.e
		r = e.buildAnnouncement(e.asns[f], e.asns[u], pr.rc.relOld(f, u), parentBest,
			pr.prefix, pr.rc.polOld(f), pr.rc.polOld(u), pr.st)
	}
	pr.st.memoSeen[u] = pr.st.version
	pr.st.memoRoute[u] = r
	return r
}

// candOld rebuilds the candidate AS v held from neighbor u pre-event
// (nil when the session carried nothing).
func (pr *prefixRecon) candOld(v, u int32) *bgp.Route {
	relVtoU := pr.rc.relOld(u, v) // what v is to u
	if relVtoU == asgraph.RelNone {
		return nil
	}
	// The receiver's own best along the session is stored parent-side;
	// reuse it rather than rebuilding.
	if pr.row[v] == u {
		return pr.bestOld(v)
	}
	best := pr.bestOld(u)
	if best == nil {
		return nil
	}
	e := pr.rc.e
	vASN := e.asns[v]
	if best.Path.Contains(vASN) || v == pr.originIdx {
		return nil
	}
	var ingress asgraph.Relationship
	if !best.IsLocal() {
		nh, _ := best.NextHopAS()
		ingress = pr.rc.relOld(u, int32(e.idx[nh]))
	}
	if !exportAllowed(e.asns[u], vASN, relVtoU, ingress, best, pr.prefix, pr.rc.polOld(u)) {
		return nil
	}
	return e.buildAnnouncement(e.asns[u], vASN, relVtoU, best, pr.prefix, pr.rc.polOld(u), pr.rc.polOld(v), pr.st)
}

// candNew computes the candidate v would hold from u right now: u's
// current best (pre-event unless u was already re-seeded) pushed through
// the post-event session policies.
func (pr *prefixRecon) candNew(st *workerState, v, u int32) *bgp.Route {
	e := pr.rc.e
	relVtoU := e.curRel(u, v)
	if relVtoU == asgraph.RelNone {
		return nil
	}
	var best *bgp.Route
	if st.seen[u] == st.version {
		best = st.best[u]
	} else {
		best = pr.bestOld(u)
	}
	if best == nil {
		return nil
	}
	vASN := e.asns[v]
	if best.Path.Contains(vASN) || v == pr.originIdx {
		return nil
	}
	var ingress asgraph.Relationship
	if !best.IsLocal() {
		nh, _ := best.NextHopAS()
		ingress = pr.rc.relAny(u, int32(e.idx[nh]))
	}
	if !exportAllowed(e.asns[u], vASN, relVtoU, ingress, best, pr.prefix, e.pols[u]) {
		return nil
	}
	return e.buildAnnouncement(e.asns[u], vASN, relVtoU, best, pr.prefix, e.pols[u], e.pols[v], pr.st)
}

// materialize seeds v's per-prefix scratch state with its reconstructed
// pre-event candidates and best route.
func (pr *prefixRecon) materialize(st *workerState, v int32) {
	if st.seen[v] == st.version {
		return
	}
	st.touch(v)
	e := pr.rc.e
	for _, u := range e.nbrs[v] {
		if c := pr.candOld(v, u); c != nil {
			st.cs.set(e.nbrs[v], v, u, c)
		}
	}
	// Sessions over just-failed links are gone from the adjacency but
	// their candidates were still installed pre-event (the candidate
	// store files them in its overflow list).
	for key := range pr.rc.removed {
		var u int32
		switch v {
		case key[0]:
			u = key[1]
		case key[1]:
			u = key[0]
		default:
			continue
		}
		if c := pr.candOld(v, u); c != nil {
			st.cs.set(e.nbrs[v], v, u, c)
		}
	}
	f := pr.row[v]
	st.bestFrom[v] = f
	switch {
	case f == trackNone:
		st.best[v] = nil
	case f == v:
		st.best[v] = localRoute(&st.routes, pr.prefix, e.asns[v])
	default:
		st.best[v] = st.cs.get(e.nbrs[v], v, f)
	}
}

// sessionReseed re-evaluates the u→v session after the events: if the
// candidate v holds from u changed, v is materialized, updated and
// re-selected. Unchanged sessions cost two route reconstructions and no
// state.
func (pr *prefixRecon) sessionReseed(st *workerState, u, v int32) {
	e := pr.rc.e
	var rOld *bgp.Route
	if st.seen[v] == st.version {
		rOld = st.cs.get(e.nbrs[v], v, u)
	} else {
		rOld = pr.candOld(v, u)
	}
	rNew := pr.candNew(st, v, u)
	if routesEquivalent(rOld, rNew) {
		return
	}
	pr.materialize(st, v)
	if rNew == nil {
		st.cs.del(e.nbrs[v], v, u)
	} else {
		st.cs.set(e.nbrs[v], v, u, rNew)
	}
	e.reselect(st, v)
}

// runIncremental runs the incremental re-convergence pass over the
// pre-existing prefixes. Link-failure-only batches take the atom-aware
// fast path: the disturb set is read off the best forest (only prefixes
// whose forest actually crosses a failed link can change any best
// route), every other prefix needs at most a constant-time candidate
// removal in the vantage tables. Mixed batches scan every prefix as
// before.
func (en *Engine) runIncremental(events []Event, rc *recon, skip map[netx.Prefix]bool, delta *Delta) {
	e := en.e
	prefixes := make([]netx.Prefix, 0, len(e.prefixes))
	if allLinkFailures(events) && len(skip) == 0 {
		prefixes = en.linkFailDisturbSet(events, delta)
	} else {
		for _, p := range e.prefixes {
			if !skip[p] {
				prefixes = append(prefixes, p)
			}
		}
	}
	var mu sync.Mutex
	e.forEachPrefix(prefixes, func(st *workerState, p netx.Prefix) {
		shift, reach, touched, converged := en.reconverge(st, p, events, rc)
		if touched == 0 && converged {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if touched > 0 {
			delta.Recomputed++
		}
		if shift.Shifted > 0 {
			delta.Shifts = append(delta.Shifts, shift)
		}
		if reach.Before != reach.After {
			delta.ReachDeltas = append(delta.ReachDeltas, reach)
		}
		e.journal.unconvPre(p, en.unconv[p])
		if !converged {
			en.unconv[p] = true
		} else if touched > 0 {
			// A previously budget-exhausted prefix that now re-converged
			// is no longer unconverged.
			delete(en.unconv, p)
		}
	})
}

func allLinkFailures(events []Event) bool {
	if len(events) == 0 {
		return false
	}
	for _, ev := range events {
		if ev.Kind != EventLinkFail {
			return false
		}
	}
	return true
}

// linkFailDisturbSet returns the prefixes a batch of link failures can
// actually disturb, handling the rest in place. A prefix's best routes
// can only change when its best forest crosses a failed link (the
// failing candidate was some AS's best); otherwise the failure at most
// removes a non-best candidate, which is observable only in a vantage
// table and is withdrawn directly. Budget-exhausted prefixes have
// unreliable forest rows and always reconverge.
func (en *Engine) linkFailDisturbSet(events []Event, delta *Delta) []netx.Prefix {
	e := en.e
	links := make([][2]int32, 0, len(events))
	for _, ev := range events {
		links = append(links, [2]int32{int32(e.idx[ev.A]), int32(e.idx[ev.B])})
	}
	var disturbed []netx.Prefix
	for pi, p := range e.prefixes {
		row := e.track[pi]
		carrier := row == nil || en.unconv[p]
		if !carrier {
			for _, l := range links {
				if row[l[0]] == l[1] || row[l[1]] == l[0] {
					carrier = true
					break
				}
			}
		}
		if carrier {
			disturbed = append(disturbed, p)
			continue
		}
		// The failed sessions carried at most non-best candidates for
		// this prefix: selection cannot change anywhere, so only vantage
		// tables (which retain full candidate sets) need maintenance.
		recomputed := false
		fallback := false
		for _, l := range links {
			for _, dir := range [2][2]int32{{l[0], l[1]}, {l[1], l[0]}} {
				v, u := dir[0], dir[1]
				if !e.vantage[int(v)] {
					continue
				}
				slot := e.tables[int(v)]
				slot.mu.Lock()
				if slot.rib.CandidateFrom(p, e.asns[u]) != nil {
					if e.journal != nil {
						e.journal.entryPreTaken(int(v), p, slot.rib.SnapshotEntry(p))
					}
					if slot.writable().Withdraw(e.asns[u], p) {
						// The removed candidate was selected: the forest
						// said otherwise, so fall back to a full
						// re-convergence (captures rebuild the entry).
						fallback = true
					}
					recomputed = true
				}
				slot.mu.Unlock()
			}
		}
		if fallback {
			disturbed = append(disturbed, p)
			continue
		}
		if recomputed {
			delta.Recomputed++
		}
	}
	return disturbed
}

// reconverge applies the events' session changes to one prefix and runs
// the activation loop from the reconstructed pre-event state. It returns
// the catchment shift, the reach change, the number of ASes whose state
// was rewritten, and whether the prefix converged within budget.
func (en *Engine) reconverge(st *workerState, prefix netx.Prefix, events []Event, rc *recon) (PrefixShift, ReachDelta, int, bool) {
	e := en.e
	st.reset()
	pr := newPrefixRecon(rc, st, prefix)
	st.curPrefix = prefix
	st.originIdx = pr.originIdx

	// Seed: re-evaluate exactly the sessions each event touches.
	for _, ev := range events {
		switch ev.Kind {
		case EventLinkFail, EventLinkRestore:
			ai, bi := int32(e.idx[ev.A]), int32(e.idx[ev.B])
			pr.sessionReseed(st, ai, bi)
			pr.sessionReseed(st, bi, ai)
		case EventLocalPref:
			if ev.PerPrefix && ev.Prefix != prefix {
				continue
			}
			xi, ni := int32(e.idx[ev.AS]), int32(e.idx[ev.Neighbor])
			pr.sessionReseed(st, ni, xi)
		case EventSAToggle, EventNoUpstream:
			if ev.Prefix != prefix {
				continue
			}
			oi := pr.originIdx
			for _, w := range e.nbrs[oi] {
				pr.sessionReseed(st, oi, w)
			}
		}
	}

	// Drain: standard event-driven propagation, materializing state only
	// where updates actually change something.
	budget := e.budget * (len(e.asns) + e.topo.Graph.NumEdges())
	activations := 0
	converged := true
	for {
		u := st.pop()
		if u < 0 {
			break
		}
		activations++
		if activations > budget {
			converged = false
			break
		}
		st.inQueue[u] = false
		best := st.best[u]
		for j, v := range e.nbrs[u] {
			relVtoU := e.rels[u][j]
			var rNew *bgp.Route
			if best != nil && e.shouldExport(u, v, relVtoU, best, prefix) {
				vASN := e.asns[v]
				if !best.Path.Contains(vASN) && v != pr.originIdx {
					rNew = e.buildAnnouncement(e.asns[u], vASN, relVtoU, best, prefix, e.pols[u], e.pols[v], st)
				}
			}
			if st.seen[v] == st.version {
				prev := st.cs.get(e.nbrs[v], v, u)
				switch {
				case rNew == nil && prev == nil:
				case rNew == nil:
					st.cs.del(e.nbrs[v], v, u)
					e.reselect(st, v)
				case prev != nil && sameRoute(prev, rNew):
				default:
					st.cs.set(e.nbrs[v], v, u, rNew)
					e.reselect(st, v)
				}
				continue
			}
			if routesEquivalent(pr.candOld(v, u), rNew) {
				continue
			}
			pr.materialize(st, v)
			if rNew == nil {
				st.cs.del(e.nbrs[v], v, u)
			} else {
				st.cs.set(e.nbrs[v], v, u, rNew)
			}
			e.reselect(st, v)
		}
	}

	st.statActivations += activations
	shift, reach := en.captureIncremental(st, prefix)
	return shift, reach, len(st.touched), converged
}

// captureIncremental writes the touched slice of the re-converged state
// back into vantage tables, reach counts and the best forest, returning
// the prefix's catchment shift and reach change.
func (en *Engine) captureIncremental(st *workerState, prefix netx.Prefix) (PrefixShift, ReachDelta) {
	e := en.e
	pi := e.prefixIdx[prefix]
	row := e.track[pi]
	e.journal.rowPre(pi, row, e.trackShared != nil && e.trackShared[pi], e.reachCounts[pi])
	if e.trackShared != nil && e.trackShared[pi] {
		// The row is visible from an engine clone: copy before the
		// in-place rewrite below (only this worker owns prefix pi).
		row = append([]int32(nil), row...)
		e.track[pi] = row
		e.trackShared[pi] = false
	}
	shift := PrefixShift{Prefix: prefix, Origin: e.topo.PrefixOrigin[prefix]}
	reachDelta := 0
	for _, i := range st.touched {
		oldFrom := row[i]
		newFrom := st.bestFrom[i]
		if st.best[i] == nil {
			newFrom = trackNone
		}
		if oldFrom != newFrom {
			shift.Shifted++
			if oldFrom != trackNone && newFrom == trackNone {
				shift.Lost++
			}
			if oldFrom == trackNone && newFrom != trackNone {
				shift.Gained++
			}
			if e.vantage[int(i)] {
				shift.Vantage = append(shift.Vantage, e.asns[i])
			}
		}
		if oldFrom != trackNone {
			reachDelta--
		}
		if newFrom != trackNone {
			reachDelta++
		}
		row[i] = newFrom
		if !e.vantage[int(i)] {
			continue
		}
		if j := e.journal; j != nil {
			j.entryPre(int(i), prefix, func() bgp.EntrySnapshot {
				slot := e.tables[int(i)]
				slot.mu.Lock()
				defer slot.mu.Unlock()
				return slot.rib.SnapshotEntry(prefix)
			})
		}
		e.captureVantage(st, i, prefix)
	}
	before := int(e.reachCounts[pi])
	e.reachCounts[pi] += int64(reachDelta)
	// Touched order is propagation order; vantage identities sort for a
	// deterministic record.
	sort.Slice(shift.Vantage, func(a, b int) bool { return shift.Vantage[a] < shift.Vantage[b] })
	return shift, ReachDelta{Prefix: prefix, Before: before, After: before + reachDelta}
}

// DiffResults compares two results route by route and returns a human-
// readable list of differences (empty means bit-identical tables, reach
// counts and convergence status). The scenario property tests use it to
// prove incremental re-convergence matches full resimulation.
func DiffResults(a, b *Result) []string {
	var diffs []string
	add := func(format string, args ...interface{}) {
		if len(diffs) < 50 {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}
	for asn, ta := range a.Tables {
		tb, ok := b.Tables[asn]
		if !ok {
			add("table %v missing in b", asn)
			continue
		}
		pa, pb := ta.Prefixes(), tb.Prefixes()
		if len(pa) != len(pb) {
			add("table %v: %d prefixes vs %d", asn, len(pa), len(pb))
		}
		for _, p := range pa {
			ca, cb := ta.Candidates(p), tb.Candidates(p)
			if len(ca) != len(cb) {
				add("table %v %v: %d candidates vs %d", asn, p, len(ca), len(cb))
				continue
			}
			for i := range ca {
				if !routeIdentical(ca[i], cb[i]) {
					add("table %v %v cand %d: %v vs %v", asn, p, i, ca[i], cb[i])
				}
			}
			if !routeIdentical(ta.Best(p), tb.Best(p)) {
				add("table %v %v best: %v vs %v", asn, p, ta.Best(p), tb.Best(p))
			}
		}
		for _, p := range pb {
			if len(ta.Candidates(p)) == 0 {
				add("table %v %v missing in a", asn, p)
			}
		}
	}
	for asn := range b.Tables {
		if _, ok := a.Tables[asn]; !ok {
			add("table %v missing in a", asn)
		}
	}
	if len(a.ReachCount) != len(b.ReachCount) {
		add("reach: %d prefixes vs %d", len(a.ReachCount), len(b.ReachCount))
	}
	for p, ra := range a.ReachCount {
		if rb, ok := b.ReachCount[p]; !ok {
			add("reach %v missing in b", p)
		} else if ra != rb {
			add("reach %v: %d vs %d", p, ra, rb)
		}
	}
	for p := range b.ReachCount {
		if _, ok := a.ReachCount[p]; !ok {
			add("reach %v missing in a", p)
		}
	}
	if len(a.Unconverged) != len(b.Unconverged) {
		add("unconverged: %d vs %d", len(a.Unconverged), len(b.Unconverged))
	}
	return diffs
}

// routeIdentical is strict route equality: every attribute, communities
// in order.
func routeIdentical(a, b *bgp.Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Prefix == b.Prefix && a.Path.Equal(b.Path) && a.NextHop == b.NextHop &&
		a.LocalPref == b.LocalPref && a.MED == b.MED && a.Origin == b.Origin &&
		a.FromIBGP == b.FromIBGP && a.IGPMetric == b.IGPMetric && a.RouterID == b.RouterID &&
		communitiesEqual(a.Communities, b.Communities)
}
