package simulate

// Guards for ISSUE 8's hard constraint: instrumentation must not
// regress the PR 5 zero-alloc core. The AllocsPerRun tests compare the
// instrumented paths with obs enabled vs disabled — counters are
// unconditional atomics and timing sites are branch-gated, so the two
// must be allocation-identical. BenchmarkConvergeObsOn/Off feed the
// scripts/bench_obs.sh overhead gate (≤3%).

import (
	"testing"

	"github.com/policyscope/policyscope/obs"
)

// TestApplyRollbackAllocIdenticalWithObs: the sweep executor's journal
// cycle (Checkpoint → Apply → Rollback) allocates exactly the same
// with metrics enabled and disabled.
func TestApplyRollbackAllocIdenticalWithObs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not deterministic under the race detector")
	}
	topo, vantage := equivalenceTopo(t, 200, 11)
	en, err := NewEngine(topo, Options{VantagePoints: vantage, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	edges := topo.Graph.Edges()
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	cycle := func() {
		en.Checkpoint()
		if _, err := en.Apply(Scenario{Events: []Event{FailLink(edges[7].A, edges[7].B)}}); err != nil {
			t.Fatal(err)
		}
		if !en.Rollback() {
			t.Fatal("rollback failed")
		}
	}
	// Warm pools and arenas so both measurements see steady state.
	for i := 0; i < 3; i++ {
		cycle()
	}
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)
	on := testing.AllocsPerRun(20, cycle)
	obs.SetEnabled(false)
	off := testing.AllocsPerRun(20, cycle)
	if on != off {
		t.Errorf("apply/rollback allocs: obs on %.1f, obs off %.1f — instrumentation changed the allocation profile", on, off)
	}
}

// TestConvergeAllocIdenticalWithObs: a full cold convergence allocates
// the same with metrics enabled and disabled.
func TestConvergeAllocIdenticalWithObs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not deterministic under the race detector")
	}
	topo, vantage := equivalenceTopo(t, 120, 5)
	run := func() {
		res, err := Run(topo, Options{VantagePoints: vantage, Parallelism: 1})
		if err != nil || len(res.Tables) == 0 {
			t.Fatalf("run: %v", err)
		}
	}
	run() // warm shared intern state
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)
	on := testing.AllocsPerRun(5, run)
	obs.SetEnabled(false)
	off := testing.AllocsPerRun(5, run)
	if on != off {
		t.Errorf("converge allocs: obs on %.1f, obs off %.1f — instrumentation changed the allocation profile", on, off)
	}
}

// TestEngineMetricsAdvance: the engine counters actually move — a
// converge pass counts its prefixes and activations, Checkpoint/
// Rollback count their cycles, and the atom gauges describe the last
// partition.
func TestEngineMetricsAdvance(t *testing.T) {
	topo, vantage := equivalenceTopo(t, 120, 5)

	runs0 := counterValue(t, "policyscope_converge_runs_total")
	acts0 := counterValue(t, "policyscope_converge_activations_total")
	en, err := NewEngine(topo, Options{VantagePoints: vantage, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, "policyscope_converge_runs_total"); got <= runs0 {
		t.Errorf("converge runs did not advance: %d -> %d", runs0, got)
	}
	if got := counterValue(t, "policyscope_converge_activations_total"); got <= acts0 {
		t.Errorf("activations did not advance: %d -> %d", acts0, got)
	}

	cps0 := counterValue(t, "policyscope_journal_checkpoints_total")
	rbs0 := counterValue(t, "policyscope_journal_rollbacks_total")
	edges := topo.Graph.Edges()
	en.Checkpoint()
	if _, err := en.Apply(Scenario{Events: []Event{FailLink(edges[0].A, edges[0].B)}}); err != nil {
		t.Fatal(err)
	}
	if !en.Rollback() {
		t.Fatal("rollback failed")
	}
	if got := counterValue(t, "policyscope_journal_checkpoints_total"); got != cps0+1 {
		t.Errorf("checkpoints %d -> %d, want +1", cps0, got)
	}
	if got := counterValue(t, "policyscope_journal_rollbacks_total"); got != rbs0+1 {
		t.Errorf("rollbacks %d -> %d, want +1", rbs0, got)
	}

	stats := en.Atoms()
	if stats.Prefixes > 0 {
		if mAtomPrefixes.Value() <= 0 || mAtomClasses.Value() <= 0 {
			t.Errorf("atom gauges not set: prefixes=%d classes=%d", mAtomPrefixes.Value(), mAtomClasses.Value())
		}
	}
}

// counterValue reads a counter off the default registry by name.
func counterValue(t *testing.T, name string) uint64 {
	t.Helper()
	c := obs.NewCounter(name, "")
	return c.Value()
}

// BenchmarkConvergeObsOn / BenchmarkConvergeObsOff bracket the cost of
// the always-on instrumentation: identical workloads, timing capture
// and counters live vs timing capture disabled. scripts/bench_obs.sh
// gates the delta at ≤3%.
func benchmarkConvergeObs(b *testing.B, enabled bool) {
	topo, vantage := convergeBenchSetup(b)
	defer obs.SetEnabled(true)
	obs.SetEnabled(enabled)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(topo, Options{VantagePoints: vantage})
		if err != nil || len(res.Tables) == 0 {
			b.Fatalf("err %v", err)
		}
	}
}

func BenchmarkConvergeObsOn(b *testing.B)  { benchmarkConvergeObs(b, true) }
func BenchmarkConvergeObsOff(b *testing.B) { benchmarkConvergeObs(b, false) }
