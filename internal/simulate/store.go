package simulate

import (
	"slices"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// The allocation-lean scratch structures of the propagation hot loop: a
// flat CSR candidate store aligned with the engine's adjacency (replacing
// the per-AS map[int32]*bgp.Route of the original engine), chunked arenas
// for the per-hop Route and Path values (replacing a heap allocation per
// announcement), and the pooled per-prefix worker state that ties them
// together. Candidate order is implicit — the adjacency is sorted by AS
// index, which equals ascending ASN — so the deterministic tie-break needs
// no per-reselect sort.

// exCand is an overflow candidate: a route held from a neighbor that is
// no longer (or not yet) in the engine's adjacency — sessions over links
// the current event batch removed. The overflow list stays sorted by
// neighbor index.
type exCand struct {
	u int32
	r *bgp.Route
}

// candStore holds per-AS candidate routes in slots parallel to the
// engine's CSR adjacency, with a rare sorted overflow per AS.
type candStore struct {
	off   []int32 // len = n+1, CSR offsets into slots (copied from engine)
	slots []*bgp.Route
	extra [][]exCand
	count []int32
}

func (cs *candStore) init(off []int32, n int) {
	cs.off = off
	total := int(off[n])
	if cap(cs.slots) < total {
		cs.slots = make([]*bgp.Route, total)
	} else {
		cs.slots = cs.slots[:total]
	}
	if cs.extra == nil || len(cs.extra) < n {
		cs.extra = make([][]exCand, n)
	}
	if cs.count == nil || len(cs.count) < n {
		cs.count = make([]int32, n)
	}
}

// clear resets one AS's candidates (called from workerState.touch, so
// every AS is cleared at most once per prefix).
func (cs *candStore) clear(v int32) {
	s := cs.slots[cs.off[v]:cs.off[v+1]]
	for i := range s {
		s[i] = nil
	}
	cs.extra[v] = cs.extra[v][:0]
	cs.count[v] = 0
}

// slotOf returns the slot index of neighbor u in v's adjacency, or -1
// when u is not adjacent to v (binary search over the sorted list).
func slotOf(nbrs []int32, u int32) int {
	if i, ok := slices.BinarySearch(nbrs, u); ok {
		return i
	}
	return -1
}

func (cs *candStore) get(nbrs []int32, v, u int32) *bgp.Route {
	if j := slotOf(nbrs, u); j >= 0 {
		return cs.slots[cs.off[v]+int32(j)]
	}
	for _, ex := range cs.extra[v] {
		if ex.u == u {
			return ex.r
		}
	}
	return nil
}

func (cs *candStore) set(nbrs []int32, v, u int32, r *bgp.Route) {
	if j := slotOf(nbrs, u); j >= 0 {
		i := cs.off[v] + int32(j)
		if cs.slots[i] == nil {
			cs.count[v]++
		}
		cs.slots[i] = r
		return
	}
	ex := cs.extra[v]
	pos := len(ex)
	for i, c := range ex {
		if c.u == u {
			ex[i].r = r
			return
		}
		if c.u > u {
			pos = i
			break
		}
	}
	ex = append(ex, exCand{})
	copy(ex[pos+1:], ex[pos:])
	ex[pos] = exCand{u: u, r: r}
	cs.extra[v] = ex
	cs.count[v]++
}

// del removes v's candidate from u, reporting whether one was present.
func (cs *candStore) del(nbrs []int32, v, u int32) bool {
	if j := slotOf(nbrs, u); j >= 0 {
		i := cs.off[v] + int32(j)
		if cs.slots[i] == nil {
			return false
		}
		cs.slots[i] = nil
		cs.count[v]--
		return true
	}
	ex := cs.extra[v]
	for i, c := range ex {
		if c.u == u {
			cs.extra[v] = append(ex[:i], ex[i+1:]...)
			cs.count[v]--
			return true
		}
	}
	return false
}

// at / setAt / delAt are the hot-path accessors for a candidate whose
// slot position in v's adjacency is already known (the engine's reverse
// index supplies it), skipping the binary search.
func (cs *candStore) at(v, slot int32) *bgp.Route { return cs.slots[cs.off[v]+slot] }

func (cs *candStore) setAt(v, slot int32, r *bgp.Route) {
	i := cs.off[v] + slot
	if cs.slots[i] == nil {
		cs.count[v]++
	}
	cs.slots[i] = r
}

func (cs *candStore) delAt(v, slot int32) bool {
	i := cs.off[v] + slot
	if cs.slots[i] == nil {
		return false
	}
	cs.slots[i] = nil
	cs.count[v]--
	return true
}

// each calls fn for every candidate of v in ascending neighbor-index
// order, merging adjacency slots with the overflow list.
func (cs *candStore) each(nbrs []int32, v int32, fn func(u int32, r *bgp.Route)) {
	base := cs.off[v]
	ex := cs.extra[v]
	if len(ex) == 0 {
		for j, r := range cs.slots[base:cs.off[v+1]] {
			if r != nil {
				fn(nbrs[j], r)
			}
		}
		return
	}
	xi := 0
	for j, r := range cs.slots[base:cs.off[v+1]] {
		if r == nil {
			continue
		}
		for xi < len(ex) && ex[xi].u < nbrs[j] {
			fn(ex[xi].u, ex[xi].r)
			xi++
		}
		fn(nbrs[j], r)
	}
	for ; xi < len(ex); xi++ {
		fn(ex[xi].u, ex[xi].r)
	}
}

// routeArena hands out Route values from chunked blocks. Everything it
// returns is invalid after reset; routes that outlive the per-prefix
// scratch (vantage-table entries) must be deep-copied out first.
type routeArena struct {
	blocks [][]bgp.Route
	bi     int
	used   int
}

const routeArenaBlock = 1024

func (a *routeArena) alloc() *bgp.Route {
	if a.bi >= len(a.blocks) {
		a.blocks = append(a.blocks, make([]bgp.Route, routeArenaBlock))
	}
	blk := a.blocks[a.bi]
	if a.used >= len(blk) {
		a.bi++
		a.used = 0
		if a.bi >= len(a.blocks) {
			a.blocks = append(a.blocks, make([]bgp.Route, routeArenaBlock))
		}
		blk = a.blocks[a.bi]
	}
	r := &blk[a.used]
	a.used++
	return r
}

func (a *routeArena) reset() { a.bi, a.used = 0, 0 }

// pathArena carves AS-path storage from chunked blocks, so the per-hop
// path prepend shares one growing buffer instead of allocating a slice
// per announcement. Paths are invalid after reset (capture clones the
// escaping ones).
type pathArena struct {
	blocks [][]bgp.ASN
	bi     int
	used   int
}

const pathArenaBlock = 8192

// prepend returns asn+tail carved from the arena.
func (a *pathArena) prepend(asn bgp.ASN, tail bgp.Path) bgp.Path {
	need := len(tail) + 1
	for {
		if a.bi >= len(a.blocks) {
			size := pathArenaBlock
			if need > size {
				size = need
			}
			a.blocks = append(a.blocks, make([]bgp.ASN, size))
		}
		blk := a.blocks[a.bi]
		if a.used+need <= len(blk) {
			p := blk[a.used : a.used+need : a.used+need]
			a.used += need
			p[0] = asn
			copy(p[1:], tail)
			return bgp.Path(p)
		}
		a.bi++
		a.used = 0
	}
}

func (a *pathArena) reset() { a.bi, a.used = 0, 0 }

// workerState is the reusable per-prefix scratch space. States are pooled
// on the engine (sync.Pool) so repeated Apply calls — the sweep fleet's
// pattern — do not reallocate the per-AS arrays every time.
type workerState struct {
	adjVersion uint64 // engine adjacency version the CSR layout matches
	version    uint32
	// curPrefix / originIdx identify the prefix the state currently
	// converges. curPrefix is authoritative — Route values borrowed from
	// an atom representative may carry the representative's Prefix.
	curPrefix netx.Prefix
	originIdx int32
	seen      []uint32
	best      []*bgp.Route
	bestFrom  []int32 // as-index best was learned from; own index = local; trackNone = none
	inQueue   []bool
	queue     []int32
	qhead     int
	touched   []int32
	cs        candStore
	routes    routeArena
	paths     pathArena

	// memoRoute / memoSeen back prefixRecon's pre-event route memo
	// (version-stamped like seen), so reconstruction allocates no map.
	memoRoute []*bgp.Route
	memoSeen  []uint32

	// capture scratch: neighbor/route accumulation for InstallConverged.
	capNbrs   []bgp.ASN
	capRoutes []*bgp.Route

	// commCache is the worker's lock-free L1 over the engine's shared
	// intern table: the hot loop attaches the same relationship tags to
	// the same inherited sets over and over, and every
	// bgp.Communities.Add allocates. L1 misses fall through to the
	// shared bgp.Intern (L2, set by getState), which canonicalizes
	// across workers, engine clones, and the study-cache decoder, so
	// the whole engine family converges on one allocation per distinct
	// set. Interned sets are immutable heap values, safe to escape into
	// vantage tables; the L1 survives across prefixes on the pooled
	// state.
	commCache map[string]bgp.Communities
	commKey   []byte
	intern    *bgp.Intern

	// statActivations accumulates drained activations since the state
	// was pulled from the pool — a plain int so the activation loops
	// never touch an atomic; putState flushes it to the process counter.
	statActivations int
}

// addCommunity returns cs+c, memoized through st's intern cache when a
// worker state is available; equivalent to cs.Add(c).
func addCommunity(st *workerState, cs bgp.Communities, c bgp.Community) bgp.Communities {
	if st == nil {
		return cs.Add(c)
	}
	return st.internAddCommunity(cs, c)
}

func (st *workerState) internAddCommunity(cs bgp.Communities, c bgp.Community) bgp.Communities {
	if cs.Has(c) {
		return cs
	}
	// The derivation key is cs's canonical bytes
	// (bgp.AppendCommunitiesKey) with c's appended: every key decomposes
	// uniquely into (cs, c) — the last 4 bytes are c, the rest cs — so a
	// hit always returns exactly cs.Add(c). On a miss the result is
	// first interned under its own canonical (sorted) key, the one the
	// study-cache decoder uses, so every derivation of the same set —
	// across workers, clones, and decode — lands on one allocation.
	k := bgp.AppendCommunitiesKey(st.commKey[:0], cs)
	k = append(k, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	st.commKey = k
	if r, ok := st.commCache[string(k)]; ok {
		return r
	}
	r, ok := st.intern.LookupCommunities(k)
	if !ok {
		r = cs.Add(c)
		canon := bgp.AppendCommunitiesKey(nil, r)
		if prev, found := st.intern.LookupCommunities(canon); found {
			r = prev
		} else {
			r = st.intern.InternCommunities(canon, r)
		}
		r = st.intern.InternCommunities(k, r)
	}
	if st.commCache == nil {
		st.commCache = make(map[string]bgp.Communities)
	}
	st.commCache[string(k)] = r
	return r
}

func newWorkerState(e *engine) *workerState {
	n := len(e.asns)
	st := &workerState{
		adjVersion: e.adjVersion,
		seen:       make([]uint32, n),
		best:       make([]*bgp.Route, n),
		bestFrom:   make([]int32, n),
		inQueue:    make([]bool, n),
		memoRoute:  make([]*bgp.Route, n),
		memoSeen:   make([]uint32, n),
	}
	st.cs.init(e.csrOff, n)
	return st
}

// syncAdjacency rebuilds the CSR layout after the engine's adjacency
// changed (link events between pool uses).
func (st *workerState) syncAdjacency(e *engine) {
	if st.adjVersion == e.adjVersion {
		return
	}
	st.cs.init(e.csrOff, len(e.asns))
	st.adjVersion = e.adjVersion
}

func (st *workerState) reset() {
	st.version++
	if st.version == 0 { // uint32 wrap: re-seed the version stamps
		for i := range st.seen {
			st.seen[i] = 0
			st.memoSeen[i] = 0
		}
		st.version = 1
	}
	st.queue = st.queue[:0]
	st.qhead = 0
	st.touched = st.touched[:0]
	st.routes.reset()
	st.paths.reset()
}

func (st *workerState) touch(i int32) {
	if st.seen[i] != st.version {
		st.seen[i] = st.version
		st.cs.clear(i)
		st.best[i] = nil
		st.bestFrom[i] = trackNone
		st.inQueue[i] = false
		st.touched = append(st.touched, i)
	}
}

func (st *workerState) push(i int32) {
	if !st.inQueue[i] {
		st.inQueue[i] = true
		st.queue = append(st.queue, i)
	}
}

// pop returns the next queued AS (FIFO) or -1.
func (st *workerState) pop() int32 {
	if st.qhead >= len(st.queue) {
		return -1
	}
	u := st.queue[st.qhead]
	st.qhead++
	if st.qhead == len(st.queue) {
		st.queue = st.queue[:0]
		st.qhead = 0
	}
	return u
}

// getState pulls a worker state from the engine's pool (or builds one)
// and synchronizes it with the current adjacency and intern table. The
// pool is shared across engine clones, so a pulled state may have been
// warmed elsewhere in the family; re-pointing the intern is cheap and
// the adjacency sync keys off the globally unique version.
func (e *engine) getState() *workerState {
	if v := e.statePool.Get(); v != nil {
		st := v.(*workerState)
		st.syncAdjacency(e)
		st.intern = e.intern
		mStatesReused.Inc()
		return st
	}
	st := newWorkerState(e)
	st.intern = e.intern
	mStatesCreated.Inc()
	return st
}

func (e *engine) putState(st *workerState) {
	if st.statActivations > 0 {
		mActivations.Add(uint64(st.statActivations))
		st.statActivations = 0
	}
	e.statePool.Put(st)
}
