//go:build !race

package simulate

const raceEnabled = false
