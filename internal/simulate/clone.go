package simulate

import (
	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
)

// Clone returns an independent engine over the same converged state,
// sharing the expensive artifacts copy-on-write. The heavy per-prefix
// best forest (4 bytes per (prefix, AS) pair) and the vantage RIBs stay
// shared until one side's Apply actually rewrites a row or table; only
// the topology, the index structures and the reach counters are copied
// eagerly. This makes a clone orders of magnitude cheaper than
// NewEngine, which re-simulates the world.
//
// Clone must not overlap with Apply on the receiver (the usual Engine
// contract), but any number of Clone calls may run concurrently on a
// quiescent engine — the pattern a query session uses to answer
// parallel what-if requests: keep one pristine base engine, Clone per
// request, Apply on the clone, discard.
func (en *Engine) Clone() *Engine {
	en.cloneMu.Lock()
	defer en.cloneMu.Unlock()
	e := en.e

	// Mark the parent's rows and tables shared so a later Apply on the
	// parent copies before writing instead of corrupting live clones.
	if e.trackShared == nil {
		e.trackShared = make([]bool, len(e.track))
	}
	for i := range e.trackShared {
		e.trackShared[i] = true
	}
	for _, slot := range e.tables {
		slot.mu.Lock()
		slot.shared = true
		slot.mu.Unlock()
	}

	topo := en.topo.Clone()
	ce := &engine{
		topo: topo,
		opts: e.opts,
		// Immutable after construction: share.
		idx:     e.idx,
		asns:    e.asns,
		vantage: e.vantage,
		depth:   e.depth,
		budget:  e.budget,
		// The atom partition is immutable; staleness is tracked per
		// engine (the clone goes stale on its own Applies).
		atoms:      e.atoms,
		atomsStale: e.atomsStale,
		// Outer slices copied; inner neighbor/relationship slices are
		// shared because rebuildAdjacency replaces them wholesale, and
		// the CSR offset table is shared because rebuildCSR publishes a
		// fresh slice instead of rewriting. The state pool and intern
		// table are shared across the whole engine family: worker
		// states warmed on the parent serve the clones directly (the
		// clone inherits the parent's adjVersion, so warm states match
		// without a re-size), and attribute interning stays global.
		statePool:   e.statePool,
		intern:      e.intern,
		csrOff:      e.csrOff,
		back:        append([][]int32(nil), e.back...),
		adjVersion:  e.adjVersion,
		nbrs:        append([][]int32(nil), e.nbrs...),
		rels:        append([][]asgraph.Relationship(nil), e.rels...),
		pols:        make([]*topogen.Policy, len(e.asns)),
		prefixes:    append([]netx.Prefix(nil), e.prefixes...),
		reachCounts: append([]int64(nil), e.reachCounts...),
		prefixIdx:   make(map[netx.Prefix]int, len(e.prefixIdx)),
		track:       append([][]int32(nil), e.track...),
		trackShared: make([]bool, len(e.track)),
		tables:      make(map[int]*tableSlot, len(e.tables)),
	}
	for i, asn := range e.asns {
		ce.pols[i] = topo.Policies[asn]
	}
	for p, i := range e.prefixIdx {
		ce.prefixIdx[p] = i
	}
	for i := range ce.trackShared {
		ce.trackShared[i] = true
	}
	for i, slot := range e.tables {
		ce.tables[i] = &tableSlot{rib: slot.rib, shared: true}
	}

	c := &Engine{e: ce, topo: topo, opts: en.opts,
		unconv: make(map[netx.Prefix]bool, len(en.unconv))}
	for p := range en.unconv {
		c.unconv[p] = true
	}
	return c
}
