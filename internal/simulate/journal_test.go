package simulate

import (
	"fmt"
	"testing"

	"github.com/policyscope/policyscope/internal/asgraph"
	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
)

// resultSnapshot deep-copies the observable engine state so later
// mutations cannot alias it.
func resultSnapshot(en *Engine) *Result {
	res := en.Result()
	cp := &Result{
		Tables:      make(map[bgp.ASN]*bgp.RIB, len(res.Tables)),
		ReachCount:  make(map[netx.Prefix]int, len(res.ReachCount)),
		Unconverged: append([]netx.Prefix(nil), res.Unconverged...),
	}
	for asn, rib := range res.Tables {
		cp.Tables[asn] = rib.Clone()
	}
	for p, c := range res.ReachCount {
		cp.ReachCount[p] = c
	}
	return cp
}

// TestCheckpointRollbackRestoresState: Checkpoint → Apply(link events) →
// Rollback restores tables, reach counts, the best forest and the
// unconverged set bit for bit, and the engine remains usable (a second
// Apply matches a fresh engine's).
func TestCheckpointRollbackRestoresState(t *testing.T) {
	topo, vantage := equivalenceTopo(t, 200, 11)
	en, err := NewEngine(topo, Options{VantagePoints: vantage, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	pristine := resultSnapshot(en)
	rows := make([][]int32, len(en.e.prefixes))
	for pi, row := range en.e.track {
		rows[pi] = append([]int32(nil), row...)
	}

	edges := topo.Graph.Edges()
	if len(edges) < 20 {
		t.Fatal("topology too small")
	}
	for trial := 0; trial < 8; trial++ {
		ev := edges[(trial*37)%len(edges)]
		sc := Scenario{Name: fmt.Sprintf("fail-%d", trial), Events: []Event{FailLink(ev.A, ev.B)}}
		en.Checkpoint()
		delta, err := en.Apply(sc)
		if err != nil {
			t.Fatalf("apply %v: %v", sc.Name, err)
		}
		_ = delta
		if !en.Rollback() {
			t.Fatalf("rollback %v failed", sc.Name)
		}
		if diffs := DiffResults(pristine, en.Result()); len(diffs) > 0 {
			t.Fatalf("trial %d: state not restored: %s", trial, diffs[0])
		}
		for pi := range rows {
			got := en.e.track[pi]
			for i := range rows[pi] {
				if rows[pi][i] != got[i] {
					t.Fatalf("trial %d: forest row %d differs at AS %d", trial, pi, i)
				}
			}
		}
		// The restored link must be back in the graph.
		if topoRel := en.Topology().Graph.Rel(ev.A, ev.B); topoRel == asgraph.RelNone {
			t.Fatalf("trial %d: link %v-%v not restored", trial, ev.A, ev.B)
		}
	}

	// After all the checkpoint/rollback churn, a real Apply must still
	// match a fresh engine applying the same scenario.
	ev := edges[3]
	sc := Scenario{Events: []Event{FailLink(ev.A, ev.B)}}
	if _, err := en.Apply(sc); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewEngine(topo, Options{VantagePoints: vantage, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Apply(sc); err != nil {
		t.Fatal(err)
	}
	if diffs := DiffResults(fresh.Result(), en.Result()); len(diffs) > 0 {
		t.Fatalf("post-rollback apply differs: %s", diffs[0])
	}
}

// TestCheckpointDoubleApplyRefused: a second Apply under the same
// checkpoint would mix pre-images of the first batch with link deltas
// of the second; Rollback must refuse rather than restore a hybrid.
func TestCheckpointDoubleApplyRefused(t *testing.T) {
	topo, vantage := equivalenceTopo(t, 120, 5)
	en, err := NewEngine(topo, Options{VantagePoints: vantage, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	edges := topo.Graph.Edges()
	en.Checkpoint()
	if _, err := en.Apply(Scenario{Events: []Event{FailLink(edges[0].A, edges[0].B)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := en.Apply(Scenario{Events: []Event{FailLink(edges[1].A, edges[1].B)}}); err != nil {
		t.Fatal(err)
	}
	if en.Rollback() {
		t.Fatal("rollback claimed success after two applies under one checkpoint")
	}
}

// TestCheckpointUnsupportedBatch: non-link events consume the
// checkpoint and Rollback reports false (caller must re-clone).
func TestCheckpointUnsupportedBatch(t *testing.T) {
	topo, vantage := equivalenceTopo(t, 120, 3)
	en, err := NewEngine(topo, Options{VantagePoints: vantage, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var target *Engine = en
	// Pick any originated prefix.
	var ev Event
	for p := range topo.PrefixOrigin {
		ev = WithdrawPrefix(p)
		break
	}
	target.Checkpoint()
	if _, err := target.Apply(Scenario{Events: []Event{ev}}); err != nil {
		t.Fatal(err)
	}
	if target.Rollback() {
		t.Fatal("rollback claimed success for an unsupported batch")
	}
	// An unused checkpoint (validation failure) reports success: the
	// engine never left the checkpointed state.
	target.Checkpoint()
	if _, err := target.Apply(Scenario{Events: []Event{FailLink(1, 2)}}); err == nil {
		t.Fatal("expected validation error")
	}
	if !target.Rollback() {
		t.Fatal("rollback after validation failure should be a clean no-op")
	}
}
