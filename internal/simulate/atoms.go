package simulate

import (
	"github.com/policyscope/policyscope/internal/netx"
)

// Atom-sharded convergence.
//
// The paper's policy-atoms observation (Section 6, internal/atoms) is
// that routing policy treats most prefixes of an origin identically. The
// cold-convergence path exploits it: prefixes are partitioned into
// propagation-equivalence classes — same origin AS, same keyed per-prefix
// export policy (topogen.PrefixSignatures) — and only one representative
// per class runs the full per-prefix fixpoint. Every other member is then
// re-converged *from the representative's converged state*: its scratch
// state is copied (borrowing the representative's routes, which differ
// only in the Prefix attribute), the hash-drawn per-prefix policies that
// can differ inside a class (per-prefix local preferences, atypical
// subsets, transit selective announcement — topogen's "sensitive
// sessions") are re-evaluated, and only the sessions whose treatment
// actually differs are re-seeded into the standard activation loop.
//
// Correctness: the generator's preference assignments satisfy the
// Gao–Rexford stability conditions, so each prefix's converged state is
// the unique fixpoint of its policy system. The member drain starts from
// a state that satisfies every session constraint except the re-seeded
// deviations (the representative's fixpoint agrees with the member's
// policy system everywhere else) and runs the same activation loop to
// quiescence, hence it lands on that unique fixpoint — the same state a
// from-scratch propagation produces. Budget exhaustion (only possible
// with adversarial preference overrides) falls back to the from-scratch
// path, as do classes whose representative fails to converge, so
// mid-oscillation captures stay byte-identical to the unsharded engine.
// The equivalence property tests (engine_equivalence_test.go) verify all
// of this against a reference implementation across seeds.

// atomIndex is the propagation-equivalence partition of an engine's
// prefixes plus the sensitive-session lists fan-out re-evaluates.
type atomIndex struct {
	classOf map[netx.Prefix]int
	classes [][]netx.Prefix // members in prefix Compare order

	// impSess are (receiver, announcer) AS-index pairs whose import
	// local preference can vary by prefix; empty when import policy is
	// ignored. trnSess are (transit AS, provider) pairs gated by the
	// per-prefix transit-selective hash.
	impSess [][2]int32
	trnSess [][2]int32
}

// buildAtomIndex partitions the engine's prefixes by policy signature.
func buildAtomIndex(e *engine) *atomIndex {
	sigs := e.topo.PrefixSignatures()
	bySig := make(map[string]int)
	ai := &atomIndex{classOf: make(map[netx.Prefix]int, len(e.prefixes))}
	for _, p := range e.prefixes { // Compare order → members stay sorted
		sig := sigs[p]
		ci, ok := bySig[sig]
		if !ok {
			ci = len(ai.classes)
			bySig[sig] = ci
			ai.classes = append(ai.classes, nil)
		}
		ai.classes[ci] = append(ai.classes[ci], p)
		ai.classOf[p] = ci
	}
	if !e.opts.IgnoreImportPolicy {
		for _, s := range e.topo.ImportSensitiveSessions() {
			a, aok := e.idx[s.AS]
			b, bok := e.idx[s.Neighbor]
			if aok && bok {
				ai.impSess = append(ai.impSess, [2]int32{int32(a), int32(b)})
			}
		}
	}
	for _, s := range e.topo.TransitSelectivePairs() {
		a, aok := e.idx[s.AS]
		b, bok := e.idx[s.Neighbor]
		if aok && bok {
			ai.trnSess = append(ai.trnSess, [2]int32{int32(a), int32(b)})
		}
	}
	mAtomPrefixes.Set(int64(len(e.prefixes)))
	mAtomClasses.Set(int64(len(ai.classes)))
	return ai
}

// runAtoms converges the requested prefixes atom-sharded: one full
// propagation per class touched by the request, then a deviation drain
// per additional member. Prefixes outside the partition (re-announced
// after the index was built) run the plain path.
func (e *engine) runAtoms(prefixes []netx.Prefix, fail func(netx.Prefix)) {
	// Group the request by class, preserving determinism: groups are
	// ordered by first-appearance of their class in the sorted request,
	// members sorted within.
	groups := make([][]netx.Prefix, 0, len(prefixes))
	groupOf := make(map[int]int)
	sorted := append([]netx.Prefix(nil), prefixes...)
	netx.SortPrefixes(sorted)
	for _, p := range sorted {
		ci, ok := e.atoms.classOf[p]
		if !ok {
			groups = append(groups, []netx.Prefix{p})
			continue
		}
		gi, ok := groupOf[ci]
		if !ok {
			gi = len(groups)
			groupOf[ci] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], p)
	}

	e.forEachIndex(len(groups), func() (func(int), func()) {
		rep, mem := e.getState(), e.getState()
		return func(i int) { e.runGroup(rep, mem, groups[i], fail) },
			func() { e.putState(rep); e.putState(mem) }
	})
}

// runGroup converges one class group: full propagation for the first
// member, deviation fan-out for the rest.
func (e *engine) runGroup(rep, mem *workerState, group []netx.Prefix, fail func(netx.Prefix)) {
	ok := e.propagate(rep, group[0])
	e.capture(rep, group[0])
	if !ok {
		fail(group[0])
		// An unconverged representative means the class preference system
		// is outside the safe regime; fall back to the from-scratch path
		// so mid-oscillation captures match the unsharded engine exactly.
		for _, p := range group[1:] {
			if !e.propagate(rep, p) {
				fail(p)
			}
			e.capture(rep, p)
		}
		return
	}
	for _, p := range group[1:] {
		if e.fanout(rep, mem, group[0], p) {
			e.capture(mem, p)
			continue
		}
		// Deviation drain exhausted its budget: from-scratch fallback.
		if !e.propagate(mem, p) {
			fail(p)
		}
		e.capture(mem, p)
	}
}

// fanout re-converges member from the representative's converged state
// held in rep. It returns false when the drain exhausts the activation
// budget (the caller then falls back to a from-scratch propagation).
// On success mem holds member's converged state, ready for capture.
func (e *engine) fanout(rep, mem *workerState, repPrefix, member netx.Prefix) bool {
	mem.reset()
	mem.curPrefix = member
	mem.originIdx = rep.originIdx

	// Copy the representative's per-AS state. The Route values are
	// borrowed (they live in rep's arenas, untouched until the whole
	// group is done); capture rewrites their Prefix on the way into the
	// vantage tables.
	for _, i := range rep.touched {
		mem.touch(i)
		mem.best[i] = rep.best[i]
		mem.bestFrom[i] = rep.bestFrom[i]
		copy(mem.cs.slots[mem.cs.off[i]:mem.cs.off[i+1]], rep.cs.slots[rep.cs.off[i]:rep.cs.off[i+1]])
		if ex := rep.cs.extra[i]; len(ex) > 0 {
			mem.cs.extra[i] = append(mem.cs.extra[i][:0], ex...)
		}
		mem.cs.count[i] = rep.cs.count[i]
	}

	// Re-evaluate the hash-drawn import policies: wherever the member's
	// effective local preference differs from the representative's and a
	// candidate is installed, rebuild it and re-select.
	if !e.opts.IgnoreImportPolicy {
		for _, s := range e.atoms.impSess {
			v, u := s[0], s[1]
			if mem.seen[v] != mem.version {
				continue // v unreachable in this class
			}
			cur := mem.cs.get(e.nbrs[v], v, u)
			if cur == nil {
				continue
			}
			polV := e.pols[v]
			vASN, uASN := e.asns[v], e.asns[u]
			lpNew := e.topo.EffectiveLocalPrefWith(polV, vASN, uASN, member)
			if lpNew == cur.LocalPref {
				continue
			}
			r := *cur
			r.LocalPref = lpNew
			nr := mem.routes.alloc()
			*nr = r
			mem.cs.set(e.nbrs[v], v, u, nr)
			e.reselect(mem, v)
		}
	}

	// Re-evaluate the transit-selective export gates: wherever the hash
	// fires differently for the member, redo the session's announcement
	// or withdrawal.
	for _, s := range e.atoms.trnSess {
		u, v := s[0], s[1]
		if mem.seen[u] != mem.version {
			continue
		}
		pol := e.pols[u]
		if pol == nil || pol.Export.TransitSelective <= 0 {
			continue
		}
		exNew := pol.Export.TransitExcluded(e.asns[u], member, e.asns[v])
		exOld := pol.Export.TransitExcluded(e.asns[u], repPrefix, e.asns[v])
		if exNew == exOld {
			continue
		}
		e.reseedSession(mem, u, v)
	}

	return e.drain(mem)
}

// reseedSession re-runs the export step of one directed session u→v in
// the current state (one iteration of exportFrom restricted to v).
func (e *engine) reseedSession(st *workerState, u, v int32) {
	j := slotOf(e.nbrs[u], v)
	if j < 0 {
		return
	}
	relVtoU := e.rels[u][j]
	best := st.best[u]
	if best != nil && e.shouldExport(u, v, relVtoU, best, st.curPrefix) {
		e.announce(st, u, v, relVtoU, best)
	} else {
		e.withdraw(st, u, v)
	}
}

// AtomStats summarizes the engine's propagation-equivalence partition.
type AtomStats struct {
	Prefixes int
	Classes  int
	// LargestClass is the biggest member count.
	LargestClass int
	// ImportSensitiveSessions / TransitSelectivePairs size the per-member
	// deviation scan.
	ImportSensitiveSessions int
	TransitSelectivePairs   int
}

// Atoms reports the partition the engine converged with (zero value when
// dedup is disabled).
func (en *Engine) Atoms() AtomStats { return en.e.atomStats() }

func (e *engine) atomStats() AtomStats {
	if e.atoms == nil {
		return AtomStats{Prefixes: len(e.prefixes)}
	}
	st := AtomStats{
		Prefixes:                len(e.prefixes),
		Classes:                 len(e.atoms.classes),
		ImportSensitiveSessions: len(e.atoms.impSess),
		TransitSelectivePairs:   len(e.atoms.trnSess),
	}
	for _, c := range e.atoms.classes {
		if len(c) > st.LargestClass {
			st.LargestClass = len(c)
		}
	}
	return st
}
