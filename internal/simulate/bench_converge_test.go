package simulate

// The cold-convergence gate benchmarks (scripts/bench_converge.sh →
// BENCH_converge.json). The subject is the paper preset's topology
// (600 ASes, the scale policyscope.DefaultConfig simulates) with 24
// vantage points:
//
//   - BenchmarkConvergeCold / BenchmarkConvergeColdLegacy gate the
//     ≥3x end-to-end speedup of the atom-sharded, allocation-lean
//     engine over the pre-refactor reference (engine_equivalence_test
//     proves the results byte-identical);
//   - BenchmarkConvergeColdNoDedup isolates the zero-alloc core's share
//     of the win (atom dedup disabled);
//   - BenchmarkConvergeAllocs / BenchmarkConvergeAllocsLegacy gate the
//     ≥5x allocs/op reduction of the propagation loop (run with
//     -benchmem; single-threaded so allocs/op is stable).

import (
	"sync"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/topogen"
)

var (
	convergeOnce    sync.Once
	convergeTopo    *topogen.Topology
	convergeVantage []bgp.ASN
)

// convergeBenchSetup memoizes the paper-preset topology shared by the
// converge benchmarks.
func convergeBenchSetup(b *testing.B) (*topogen.Topology, []bgp.ASN) {
	b.Helper()
	convergeOnce.Do(func() {
		convergeTopo, convergeVantage = equivalenceTopo(b, 600, 42)
	})
	if convergeTopo == nil {
		b.Skip("topology generation failed earlier")
	}
	return convergeTopo, convergeVantage
}

func BenchmarkConvergeCold(b *testing.B) {
	topo, vantage := convergeBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(topo, Options{VantagePoints: vantage})
		if err != nil || len(res.Tables) == 0 {
			b.Fatalf("err %v", err)
		}
	}
	b.ReportMetric(float64(len(topo.PrefixOrigin)), "prefixes")
}

func BenchmarkConvergeColdNoDedup(b *testing.B) {
	topo, vantage := convergeBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(topo, Options{VantagePoints: vantage, DisableAtomDedup: true})
		if err != nil || len(res.Tables) == 0 {
			b.Fatalf("err %v", err)
		}
	}
}

func BenchmarkConvergeColdLegacy(b *testing.B) {
	topo, vantage := convergeBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := legacyRun(topo, Options{VantagePoints: vantage})
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkConvergeAllocs runs the optimized loop single-threaded so
// allocs/op is deterministic; the allocation gate divides the legacy
// variant's allocs/op by this one's.
func BenchmarkConvergeAllocs(b *testing.B) {
	topo, vantage := convergeBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(topo, Options{VantagePoints: vantage, Parallelism: 1})
		if err != nil || len(res.Tables) == 0 {
			b.Fatalf("err %v", err)
		}
	}
}

func BenchmarkConvergeAllocsLegacy(b *testing.B) {
	topo, vantage := convergeBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _ := legacyRun(topo, Options{VantagePoints: vantage, Parallelism: 1})
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}
