package simulate

import (
	"time"

	"github.com/policyscope/policyscope/obs"
)

// Process-wide engine metrics, resolved once at init so every hot-path
// touch is a bare atomic op. Counters aggregate across all engines in
// the process (base + sweep-worker clones): they answer "what is this
// process doing", not "what did one engine do" — per-run numbers stay
// on the Result/Delta structs.
//
// Hot-path rule (see DESIGN.md "Observability"): nothing inside the
// per-activation loops touches these directly. Activation counts
// accumulate in plain ints on workerState and flush to the atomic in
// putState; wall-time capture sites sit outside the loops and are
// gated on obs.Enabled so bench_obs.sh can measure the delta.
var (
	mConvergeRuns = obs.NewCounter("policyscope_converge_runs_total",
		"Convergence passes (full or subset) executed by any engine in the process.")
	mConvergePrefixes = obs.NewCounter("policyscope_converge_prefixes_total",
		"Prefixes submitted to convergence passes.")
	mConvergeUnconverged = obs.NewCounter("policyscope_converge_unconverged_total",
		"Prefixes that exhausted their activation budget during convergence passes.")
	mConvergeSeconds = obs.NewHistogram("policyscope_converge_seconds",
		"Wall time of one convergence pass.", nil)
	mActivations = obs.NewCounter("policyscope_converge_activations_total",
		"AS activations drained across all convergence and reconvergence loops.")
	mStatesCreated = obs.NewCounter("policyscope_engine_worker_states_created_total",
		"Worker states newly allocated (pool miss).")
	mStatesReused = obs.NewCounter("policyscope_engine_worker_states_reused_total",
		"Worker states pulled from the shared pool (pool hit).")

	mAtomPrefixes = obs.NewGauge("policyscope_atom_prefixes",
		"Prefixes covered by the most recently built atom partition.")
	mAtomClasses = obs.NewGauge("policyscope_atom_classes",
		"Policy-equivalence classes in the most recently built atom partition (dedup ratio = prefixes/classes).")

	mApplies = obs.NewCounter("policyscope_scenario_applies_total",
		"Scenario batches applied (incremental reconvergence).")
	mApplySeconds = obs.NewHistogram("policyscope_scenario_apply_seconds",
		"Wall time of one scenario Apply.", nil)
	mCheckpoints = obs.NewCounter("policyscope_journal_checkpoints_total",
		"Checkpoints armed on any engine.")
	mRollbacks = obs.NewCounter("policyscope_journal_rollbacks_total",
		"Rollbacks that restored the checkpointed state.")
	mRollbackRefused = obs.NewCounter("policyscope_journal_rollbacks_unsupported_total",
		"Rollbacks refused because the applied batch was not journalable.")
)

// observeApplyEnd closes the Apply timing started under obs.Enabled. A
// plain deferred func (not a closure) so the defer record stays
// open-coded and Apply's allocation profile is identical with
// instrumentation on or off.
func observeApplyEnd(start time.Time) {
	if !start.IsZero() {
		mApplySeconds.ObserveSince(start)
	}
}
