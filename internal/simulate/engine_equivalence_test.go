package simulate

// The reference engine: a faithful port of the pre-refactor propagation
// loop — per-AS map candidate stores, bgp.Best selection, per-hop heap
// Route/Path allocation, Upsert-driven table capture. It exists to prove
// the optimized engine (flat CSR store, arenas, atom-sharded
// convergence) is byte-identical, and to anchor the BenchmarkConverge*
// speedup/allocation gates against the real pre-optimization cost.

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/netx"
	"github.com/policyscope/policyscope/internal/topogen"
)

// legacyState is the original per-prefix scratch: map candidate stores.
type legacyState struct {
	version  uint32
	seen     []uint32
	cands    []map[int32]*bgp.Route
	best     []*bgp.Route
	bestFrom []int32
	inQueue  []bool
	queue    []int32
	touched  []int32
}

func newLegacyState(n int) *legacyState {
	return &legacyState{
		seen:     make([]uint32, n),
		cands:    make([]map[int32]*bgp.Route, n),
		best:     make([]*bgp.Route, n),
		bestFrom: make([]int32, n),
		inQueue:  make([]bool, n),
	}
}

func (st *legacyState) reset() {
	st.version++
	st.queue = st.queue[:0]
	st.touched = st.touched[:0]
}

func (st *legacyState) touch(i int32) {
	if st.seen[i] != st.version {
		st.seen[i] = st.version
		st.cands[i] = nil
		st.best[i] = nil
		st.bestFrom[i] = trackNone
		st.inQueue[i] = false
		st.touched = append(st.touched, i)
	}
}

func (st *legacyState) push(i int32) {
	if !st.inQueue[i] {
		st.inQueue[i] = true
		st.queue = append(st.queue, i)
	}
}

func legacyReselect(e *engine, st *legacyState, v int32) {
	keys := make([]int32, 0, len(st.cands[v]))
	for k := range st.cands[v] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	cands := make([]*bgp.Route, 0, len(keys))
	for _, k := range keys {
		cands = append(cands, st.cands[v][k])
	}
	newBest := bgp.Best(cands, e.depth)
	from := trackNone
	for i, r := range cands {
		if r == newBest {
			from = keys[i]
			break
		}
	}
	if routesEquivalent(newBest, st.best[v]) {
		st.bestFrom[v] = from
		return
	}
	st.best[v] = newBest
	st.bestFrom[v] = from
	st.push(v)
}

func legacyWithdraw(st *legacyState, u, v int32) bool {
	if st.seen[v] != st.version || st.cands[v] == nil {
		return false
	}
	if _, ok := st.cands[v][u]; !ok {
		return false
	}
	delete(st.cands[v], u)
	return true
}

func legacyPropagate(e *engine, st *legacyState, prefix netx.Prefix) bool {
	origin, ok := e.topo.PrefixOrigin[prefix]
	if !ok {
		return true
	}
	oi := int32(e.idx[origin])
	st.reset()
	st.touch(oi)
	st.best[oi] = localRoute(nil, prefix, origin)
	st.bestFrom[oi] = oi
	st.push(oi)

	budget := e.budget * (len(e.asns) + e.topo.Graph.NumEdges())
	activations := 0
	for len(st.queue) > 0 {
		activations++
		if activations > budget {
			return false
		}
		u := st.queue[0]
		st.queue = st.queue[1:]
		st.inQueue[u] = false
		best := st.best[u]
		for j, v := range e.nbrs[u] {
			rel := e.rels[u][j]
			if best != nil && e.shouldExport(u, v, rel, best, prefix) {
				uASN, vASN := e.asns[u], e.asns[v]
				if best.Path.Contains(vASN) || vASN == e.topo.PrefixOrigin[best.Prefix] {
					if legacyWithdraw(st, u, v) {
						legacyReselect(e, st, v)
					}
					continue
				}
				r := e.buildAnnouncement(uASN, vASN, rel, best, prefix, e.pols[u], e.pols[v], nil)
				st.touch(v)
				if st.cands[v] == nil {
					st.cands[v] = make(map[int32]*bgp.Route, 4)
				}
				prev := st.cands[v][u]
				if prev != nil && sameRoute(prev, r) {
					continue
				}
				st.cands[v][u] = r
				legacyReselect(e, st, v)
			} else {
				if legacyWithdraw(st, u, v) {
					legacyReselect(e, st, v)
				}
			}
		}
	}
	return true
}

// legacyTable is a vantage table behind its lock, like the original
// engine's tableSlot.
type legacyTable struct {
	mu  sync.Mutex
	rib *bgp.RIB
}

// legacyCapture installs converged state the pre-refactor way: RIB
// Upserts in deterministic candidate order.
func legacyCapture(e *engine, st *legacyState, prefix netx.Prefix, tables map[int]*legacyTable, reach []int64, rows [][]int32) {
	pi := e.prefixIdx[prefix]
	if rows != nil {
		row := rows[pi]
		if row == nil {
			row = make([]int32, len(e.asns))
			rows[pi] = row
		}
		for i := range row {
			row[i] = trackNone
		}
		for _, i := range st.touched {
			row[i] = st.bestFrom[i]
		}
	}
	n := 0
	for _, i := range st.touched {
		if st.best[i] != nil || len(st.cands[i]) > 0 {
			n++
		}
		slot, ok := tables[int(i)]
		if !ok {
			continue
		}
		slot.mu.Lock()
		if st.best[i] != nil && st.best[i].IsLocal() {
			slot.rib.Upsert(e.asns[i], st.best[i])
		}
		keys := make([]int32, 0, len(st.cands[i]))
		for k := range st.cands[i] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			slot.rib.Upsert(e.asns[k], st.cands[i][k])
		}
		slot.mu.Unlock()
	}
	reach[pi] = int64(n)
}

// legacyRun is the pre-refactor engine: plain per-prefix fixpoints, map
// stores, heap routes, scheduled on the same bounded worker pool the
// original used (so the benchmark comparison is parallel-vs-parallel).
func legacyRun(topo *topogen.Topology, opts Options) (*Result, [][]int32) {
	opts.DisableAtomDedup = true
	e := newEngine(topo, opts)
	tables := make(map[int]*legacyTable, len(opts.VantagePoints))
	for i := range e.vantage {
		rib := bgp.NewRIB(e.asns[i])
		rib.SetDecisionDepth(opts.DecisionDepth)
		tables[i] = &legacyTable{rib: rib}
	}
	res := &Result{
		Tables:     make(map[bgp.ASN]*bgp.RIB, len(tables)),
		ReachCount: make(map[netx.Prefix]int, len(e.prefixes)),
	}
	rows := make([][]int32, len(e.prefixes))
	reach := make([]int64, len(e.prefixes))

	workers := e.workerCount(len(e.prefixes))
	var (
		mu          sync.Mutex
		next        int
		wg          sync.WaitGroup
		unconverged []netx.Prefix
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := newLegacyState(len(e.asns))
			for {
				mu.Lock()
				if next >= len(e.prefixes) {
					mu.Unlock()
					return
				}
				p := e.prefixes[next]
				next++
				mu.Unlock()
				if !legacyPropagate(e, st, p) {
					mu.Lock()
					unconverged = append(unconverged, p)
					mu.Unlock()
				}
				legacyCapture(e, st, p, tables, reach, rows)
			}
		}()
	}
	wg.Wait()
	netx.SortPrefixes(unconverged)
	res.Unconverged = unconverged
	for pi, p := range e.prefixes {
		res.ReachCount[p] = int(reach[pi])
	}
	for i, slot := range tables {
		res.Tables[e.asns[i]] = slot.rib
	}
	return res, rows
}

func equivalenceTopo(t testing.TB, n int, seed int64) (*topogen.Topology, []bgp.ASN) {
	t.Helper()
	topo, err := topogen.Generate(topogen.DefaultConfig(n, seed))
	if err != nil {
		t.Fatal(err)
	}
	stride := len(topo.Order) / 24
	if stride == 0 {
		stride = 1
	}
	vantage := make([]bgp.ASN, 0, 24)
	for i := 0; i < len(topo.Order) && len(vantage) < 24; i += stride {
		vantage = append(vantage, topo.Order[i])
	}
	return topo, vantage
}

// TestEngineMatchesLegacyReference proves the optimized engine —
// atom-sharded and with dedup disabled — produces byte-identical
// tables, reach counts, convergence status and best forests to the
// pre-refactor reference, across seeds.
func TestEngineMatchesLegacyReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			topo, vantage := equivalenceTopo(t, 300, seed)
			opts := Options{VantagePoints: vantage}
			want, wantRows := legacyRun(topo, opts)

			for _, mode := range []struct {
				name string
				opts Options
			}{
				{"atoms", opts},
				{"noDedup", Options{VantagePoints: vantage, DisableAtomDedup: true}},
			} {
				got, err := Run(topo, mode.opts)
				if err != nil {
					t.Fatalf("%s: %v", mode.name, err)
				}
				if diffs := DiffResults(want, got); len(diffs) > 0 {
					t.Fatalf("%s differs from legacy reference:\n%s", mode.name, diffs[0])
				}
			}

			// The best forest drives the scenario engine; it must match
			// the reference row for row.
			en, err := NewEngine(topo, opts)
			if err != nil {
				t.Fatal(err)
			}
			e := en.e
			for pi, p := range e.prefixes {
				ref := wantRows[pi]
				got := e.track[pi]
				wantPi, ok := e.prefixIdx[p]
				if !ok || wantPi != pi {
					t.Fatalf("prefix index inconsistent for %v", p)
				}
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("seed %d prefix %v: track[%d] = %d, reference %d",
							seed, p, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

// TestEngineMatchesLegacyAblations covers the ablation knobs: truncated
// decision depth (which disables atom dedup) and import-policy-free
// propagation.
func TestEngineMatchesLegacyAblations(t *testing.T) {
	topo, vantage := equivalenceTopo(t, 200, 7)
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"depthLocalPref", Options{VantagePoints: vantage, DecisionDepth: bgp.StepLocalPref}},
		{"depthPathLen", Options{VantagePoints: vantage, DecisionDepth: bgp.StepASPathLen}},
		{"noImport", Options{VantagePoints: vantage, IgnoreImportPolicy: true}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			want, _ := legacyRun(topo, mode.opts)
			got, err := Run(topo, mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			if diffs := DiffResults(want, got); len(diffs) > 0 {
				t.Fatalf("differs from legacy reference:\n%s", diffs[0])
			}
		})
	}
}

// TestAtomPartitionSanity pins the partition shape the speedup relies
// on: strictly fewer classes than prefixes, every prefix covered, and
// members sharing their class origin.
func TestAtomPartitionSanity(t *testing.T) {
	topo, _ := equivalenceTopo(t, 300, 5)
	e := newEngine(topo, Options{})
	if e.atoms == nil {
		t.Fatal("atom index not built")
	}
	stats := e.atomStats()
	if stats.Classes <= 0 || stats.Classes >= stats.Prefixes {
		t.Fatalf("partition did not collapse: %+v", stats)
	}
	covered := 0
	for ci, members := range e.atoms.classes {
		if len(members) == 0 {
			t.Fatalf("class %d empty", ci)
		}
		origin := topo.PrefixOrigin[members[0]]
		for _, p := range members {
			covered++
			if topo.PrefixOrigin[p] != origin {
				t.Fatalf("class %d spans origins %v and %v", ci, origin, topo.PrefixOrigin[p])
			}
			if e.atoms.classOf[p] != ci {
				t.Fatalf("classOf mismatch for %v", p)
			}
		}
	}
	if covered != stats.Prefixes {
		t.Fatalf("partition covers %d of %d prefixes", covered, stats.Prefixes)
	}
}
