// Package asgraph implements the annotated AS graph of Section 2.1 of the
// paper: ASes as nodes, edges classified as provider-to-customer or
// peer-to-peer (plus the sibling class Gao's inference can emit). It
// provides the relationship-constrained reachability primitives the
// paper's export-policy algorithm (Figure 4) is built on: customer cones,
// customer paths, and valley-free path validation.
package asgraph

import (
	"errors"
	"fmt"
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
)

// Relationship describes what a neighbor is *to* a given AS.
type Relationship int8

// Relationship values. RelProvider means "the neighbor is my provider".
const (
	RelNone Relationship = iota
	RelProvider
	RelCustomer
	RelPeer
	RelSibling
)

// ParseRelationship inverts String. It accepts the canonical names plus
// the common "p2c"/"c2p"/"p2p" abbreviations used in relationship files.
func ParseRelationship(s string) (Relationship, error) {
	switch s {
	case "provider", "c2p":
		return RelProvider, nil
	case "customer", "p2c":
		return RelCustomer, nil
	case "peer", "p2p":
		return RelPeer, nil
	case "sibling", "s2s":
		return RelSibling, nil
	case "none", "":
		return RelNone, nil
	}
	return RelNone, fmt.Errorf("asgraph: unknown relationship %q", s)
}

func (r Relationship) String() string {
	switch r {
	case RelProvider:
		return "provider"
	case RelCustomer:
		return "customer"
	case RelPeer:
		return "peer"
	case RelSibling:
		return "sibling"
	case RelNone:
		return "none"
	}
	return fmt.Sprintf("Relationship(%d)", int8(r))
}

// Invert returns the relationship seen from the other end of the edge.
func (r Relationship) Invert() Relationship {
	switch r {
	case RelProvider:
		return RelCustomer
	case RelCustomer:
		return RelProvider
	}
	return r
}

// ErrEdgeConflict is returned when an edge is re-added with a different
// relationship type.
var ErrEdgeConflict = errors.New("asgraph: conflicting edge relationship")

// Graph is an annotated AS graph. The zero value is unusable; use New.
type Graph struct {
	providers map[bgp.ASN][]bgp.ASN // neighbors that are providers of the key
	customers map[bgp.ASN][]bgp.ASN // neighbors that are customers of the key
	peers     map[bgp.ASN][]bgp.ASN
	siblings  map[bgp.ASN][]bgp.ASN
	edges     map[[2]bgp.ASN]Relationship // canonical a<b; value = what b is to a
	nodes     map[bgp.ASN]bool
}

// New returns an empty annotated graph.
func New() *Graph {
	return &Graph{
		providers: make(map[bgp.ASN][]bgp.ASN),
		customers: make(map[bgp.ASN][]bgp.ASN),
		peers:     make(map[bgp.ASN][]bgp.ASN),
		siblings:  make(map[bgp.ASN][]bgp.ASN),
		edges:     make(map[[2]bgp.ASN]Relationship),
		nodes:     make(map[bgp.ASN]bool),
	}
}

// AddNode ensures asn exists in the graph even with no edges.
func (g *Graph) AddNode(asn bgp.ASN) { g.nodes[asn] = true }

func edgeKey(a, b bgp.ASN) ([2]bgp.ASN, bool) {
	if a < b {
		return [2]bgp.ASN{a, b}, false
	}
	return [2]bgp.ASN{b, a}, true
}

// AddProviderCustomer records that provider sells transit to customer.
// Re-adding an identical edge is a no-op; a conflicting type returns
// ErrEdgeConflict.
func (g *Graph) AddProviderCustomer(provider, customer bgp.ASN) error {
	return g.addEdge(customer, provider, RelProvider)
}

// AddPeer records a peer-to-peer edge.
func (g *Graph) AddPeer(a, b bgp.ASN) error { return g.addEdge(a, b, RelPeer) }

// AddSibling records a sibling edge (mutual transit, same organization).
func (g *Graph) AddSibling(a, b bgp.ASN) error { return g.addEdge(a, b, RelSibling) }

// addEdge records that "other" is rel to "self".
func (g *Graph) addEdge(self, other bgp.ASN, rel Relationship) error {
	if self == other {
		return fmt.Errorf("asgraph: self edge on %v", self)
	}
	key, swapped := edgeKey(self, other)
	stored := rel // what key[1] is to key[0]
	if swapped {
		stored = rel.Invert()
	}
	if prev, ok := g.edges[key]; ok {
		if prev == stored {
			return nil
		}
		return fmt.Errorf("%w: %v-%v is %v, re-added as %v", ErrEdgeConflict, key[0], key[1], prev, stored)
	}
	g.edges[key] = stored
	g.nodes[self] = true
	g.nodes[other] = true
	switch rel {
	case RelProvider:
		g.providers[self] = append(g.providers[self], other)
		g.customers[other] = append(g.customers[other], self)
	case RelCustomer:
		g.customers[self] = append(g.customers[self], other)
		g.providers[other] = append(g.providers[other], self)
	case RelPeer:
		g.peers[self] = append(g.peers[self], other)
		g.peers[other] = append(g.peers[other], self)
	case RelSibling:
		g.siblings[self] = append(g.siblings[self], other)
		g.siblings[other] = append(g.siblings[other], self)
	default:
		return fmt.Errorf("asgraph: cannot add edge with relationship %v", rel)
	}
	return nil
}

// RemoveEdge deletes the edge between a and b, whatever its type,
// returning the relationship the removed edge had (what b was to a).
// It returns RelNone and false when no edge existed. Used by the
// scenario engine's link-failure events.
func (g *Graph) RemoveEdge(a, b bgp.ASN) (Relationship, bool) {
	key, swapped := edgeKey(a, b)
	stored, ok := g.edges[key]
	if !ok {
		return RelNone, false
	}
	delete(g.edges, key)
	rel := stored
	if swapped {
		rel = rel.Invert()
	}
	switch rel {
	case RelProvider: // b is a's provider
		g.providers[a] = removeASN(g.providers[a], b)
		g.customers[b] = removeASN(g.customers[b], a)
	case RelCustomer:
		g.customers[a] = removeASN(g.customers[a], b)
		g.providers[b] = removeASN(g.providers[b], a)
	case RelPeer:
		g.peers[a] = removeASN(g.peers[a], b)
		g.peers[b] = removeASN(g.peers[b], a)
	case RelSibling:
		g.siblings[a] = removeASN(g.siblings[a], b)
		g.siblings[b] = removeASN(g.siblings[b], a)
	}
	return rel, true
}

func removeASN(s []bgp.ASN, x bgp.ASN) []bgp.ASN {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// AddEdge adds an edge where rel states what b is to a — the same
// orientation RemoveEdge returns, so a fail/restore round-trip passes
// the removed relationship straight through.
func (g *Graph) AddEdge(a, b bgp.ASN, rel Relationship) error {
	return g.addEdge(a, b, rel)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for asn := range g.nodes {
		c.nodes[asn] = true
	}
	for key, rel := range g.edges {
		c.edges[key] = rel
	}
	copyAdj := func(dst, src map[bgp.ASN][]bgp.ASN) {
		for asn, nbrs := range src {
			if len(nbrs) > 0 {
				dst[asn] = append([]bgp.ASN(nil), nbrs...)
			}
		}
	}
	copyAdj(c.providers, g.providers)
	copyAdj(c.customers, g.customers)
	copyAdj(c.peers, g.peers)
	copyAdj(c.siblings, g.siblings)
	return c
}

// Rel returns what neighbor is to asn: RelProvider if neighbor is asn's
// provider, and so on. RelNone when no edge exists.
func (g *Graph) Rel(asn, neighbor bgp.ASN) Relationship {
	key, swapped := edgeKey(asn, neighbor)
	rel, ok := g.edges[key]
	if !ok {
		return RelNone
	}
	if swapped {
		return rel.Invert()
	}
	return rel
}

// Providers returns the providers of asn in ascending order.
func (g *Graph) Providers(asn bgp.ASN) []bgp.ASN { return sortedCopy(g.providers[asn]) }

// Customers returns the customers of asn in ascending order.
func (g *Graph) Customers(asn bgp.ASN) []bgp.ASN { return sortedCopy(g.customers[asn]) }

// Peers returns the peers of asn in ascending order.
func (g *Graph) Peers(asn bgp.ASN) []bgp.ASN { return sortedCopy(g.peers[asn]) }

// Siblings returns the siblings of asn in ascending order.
func (g *Graph) Siblings(asn bgp.ASN) []bgp.ASN { return sortedCopy(g.siblings[asn]) }

// Neighbors returns every neighbor of asn in ascending order.
func (g *Graph) Neighbors(asn bgp.ASN) []bgp.ASN {
	out := make([]bgp.ASN, 0,
		len(g.providers[asn])+len(g.customers[asn])+len(g.peers[asn])+len(g.siblings[asn]))
	out = append(out, g.providers[asn]...)
	out = append(out, g.customers[asn]...)
	out = append(out, g.peers[asn]...)
	out = append(out, g.siblings[asn]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns the number of neighbors of asn (Table 1's "degree").
func (g *Graph) Degree(asn bgp.ASN) int {
	return len(g.providers[asn]) + len(g.customers[asn]) + len(g.peers[asn]) + len(g.siblings[asn])
}

// HasNode reports whether asn is known to the graph.
func (g *Graph) HasNode(asn bgp.ASN) bool { return g.nodes[asn] }

// Nodes returns every AS in ascending order.
func (g *Graph) Nodes() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(g.nodes))
	for a := range g.nodes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the AS count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge is one undirected session of the graph with A < B; Rel states
// what B is to A (the AddEdge/RemoveEdge orientation).
type Edge struct {
	A, B bgp.ASN
	Rel  Relationship
}

// Edges returns every edge in deterministic (A, B) ascending order —
// the canonical enumeration sweep generators and serializers iterate.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for k, rel := range g.edges {
		out = append(out, Edge{A: k[0], B: k[1], Rel: rel})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func sortedCopy(in []bgp.ASN) []bgp.ASN {
	if len(in) == 0 {
		return nil
	}
	out := append([]bgp.ASN(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rawCustomers exposes the unsorted adjacency for hot loops.
func (g *Graph) rawCustomers(asn bgp.ASN) []bgp.ASN { return g.customers[asn] }
