package asgraph

import (
	"errors"
	"testing"

	"github.com/policyscope/policyscope/internal/bgp"
)

// figure1 builds the annotated graph of the paper's Figure 1:
// AS1 and AS2 are Tier-1-style peers; AS2 is the provider of AS4 and AS5;
// AS1 is the provider of AS3 and AS5; AS3 peers with AS4; AS4 is the
// provider of AS6.
func figure1(t *testing.T) *Graph {
	t.Helper()
	g := New()
	mustAdd(t, g.AddPeer(1, 2))
	mustAdd(t, g.AddProviderCustomer(1, 3))
	mustAdd(t, g.AddProviderCustomer(1, 5))
	mustAdd(t, g.AddProviderCustomer(2, 4))
	mustAdd(t, g.AddProviderCustomer(2, 5))
	mustAdd(t, g.AddPeer(3, 4))
	mustAdd(t, g.AddProviderCustomer(4, 6))
	return g
}

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestRelPerspectives(t *testing.T) {
	g := figure1(t)
	if got := g.Rel(4, 2); got != RelProvider {
		t.Fatalf("Rel(4,2) = %v, want provider (AS2 is the provider of AS4)", got)
	}
	if got := g.Rel(2, 4); got != RelCustomer {
		t.Fatalf("Rel(2,4) = %v, want customer", got)
	}
	if got := g.Rel(3, 4); got != RelPeer {
		t.Fatalf("Rel(3,4) = %v, want peer", got)
	}
	if got := g.Rel(4, 3); got != RelPeer {
		t.Fatalf("Rel(4,3) = %v, want peer", got)
	}
	if got := g.Rel(1, 6); got != RelNone {
		t.Fatalf("Rel(1,6) = %v, want none", got)
	}
}

func TestEdgeConflictAndIdempotence(t *testing.T) {
	g := New()
	mustAdd(t, g.AddProviderCustomer(10, 20))
	if err := g.AddProviderCustomer(10, 20); err != nil {
		t.Fatalf("idempotent re-add failed: %v", err)
	}
	if err := g.AddPeer(10, 20); !errors.Is(err, ErrEdgeConflict) {
		t.Fatalf("conflicting re-add = %v, want ErrEdgeConflict", err)
	}
	if err := g.AddProviderCustomer(20, 10); !errors.Is(err, ErrEdgeConflict) {
		t.Fatalf("reversed p2c = %v, want ErrEdgeConflict", err)
	}
	if err := g.AddPeer(5, 5); err == nil {
		t.Fatal("self edge must fail")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestAdjacencyAccessors(t *testing.T) {
	g := figure1(t)
	if got := g.Providers(5); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Providers(5) = %v", got)
	}
	if got := g.Customers(2); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Customers(2) = %v", got)
	}
	if got := g.Peers(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Peers(1) = %v", got)
	}
	if got := g.Neighbors(4); len(got) != 3 {
		t.Fatalf("Neighbors(4) = %v", got)
	}
	if g.Degree(4) != 3 || g.Degree(6) != 1 {
		t.Fatalf("degrees: %d, %d", g.Degree(4), g.Degree(6))
	}
	if g.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if !g.HasNode(6) || g.HasNode(99) {
		t.Fatal("HasNode misbehaved")
	}
	nodes := g.Nodes()
	if len(nodes) != 6 || nodes[0] != 1 || nodes[5] != 6 {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestSiblings(t *testing.T) {
	g := New()
	mustAdd(t, g.AddSibling(100, 200))
	if g.Rel(100, 200) != RelSibling || g.Rel(200, 100) != RelSibling {
		t.Fatal("sibling must be symmetric")
	}
	if got := g.Siblings(100); len(got) != 1 || got[0] != 200 {
		t.Fatalf("Siblings = %v", got)
	}
}

func TestAddNode(t *testing.T) {
	g := New()
	g.AddNode(42)
	if !g.HasNode(42) || g.Degree(42) != 0 {
		t.Fatal("AddNode failed")
	}
}

func TestRelationshipStringAndInvert(t *testing.T) {
	cases := map[Relationship]string{
		RelNone: "none", RelProvider: "provider", RelCustomer: "customer",
		RelPeer: "peer", RelSibling: "sibling", Relationship(9): "Relationship(9)",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if RelProvider.Invert() != RelCustomer || RelCustomer.Invert() != RelProvider {
		t.Fatal("p2c inversion broken")
	}
	if RelPeer.Invert() != RelPeer || RelSibling.Invert() != RelSibling || RelNone.Invert() != RelNone {
		t.Fatal("symmetric relationships must invert to themselves")
	}
}

func TestCustomerCone(t *testing.T) {
	g := figure1(t)
	cone := g.CustomerCone(2)
	// AS2's cone: direct customers 4, 5 and indirect customer 6 (via 4).
	want := []bgp.ASN{4, 5, 6}
	if len(cone) != len(want) {
		t.Fatalf("cone(2) = %v", cone)
	}
	for i := range want {
		if cone[i] != want[i] {
			t.Fatalf("cone(2) = %v, want %v", cone, want)
		}
	}
	if got := g.CustomerCone(6); got != nil {
		t.Fatalf("cone(6) = %v, want empty", got)
	}
	if !g.InCustomerCone(2, 6) {
		t.Fatal("6 must be in 2's cone")
	}
	if g.InCustomerCone(6, 2) {
		t.Fatal("2 must not be in 6's cone")
	}
	if g.InCustomerCone(3, 3) {
		t.Fatal("an AS is not in its own cone")
	}
	// Peers do not extend the cone: AS3 peers with AS4 but 6 is not 3's customer.
	if g.InCustomerCone(3, 6) {
		t.Fatal("peer edge extended a customer cone")
	}
}

func TestCustomerConeWithDiamond(t *testing.T) {
	// 1 -> 2 -> 4, 1 -> 3 -> 4: 4 reachable twice, must appear once.
	g := New()
	mustAdd(t, g.AddProviderCustomer(1, 2))
	mustAdd(t, g.AddProviderCustomer(1, 3))
	mustAdd(t, g.AddProviderCustomer(2, 4))
	mustAdd(t, g.AddProviderCustomer(3, 4))
	cone := g.CustomerCone(1)
	if len(cone) != 3 {
		t.Fatalf("cone = %v, want {2,3,4}", cone)
	}
}

func TestCustomerPath(t *testing.T) {
	g := figure1(t)
	path, ok := g.CustomerPath(2, 6)
	if !ok {
		t.Fatal("no customer path 2→6")
	}
	want := []bgp.ASN{2, 4, 6}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if _, ok := g.CustomerPath(6, 2); ok {
		t.Fatal("upward customer path must not exist")
	}
	if _, ok := g.CustomerPath(3, 6); ok {
		t.Fatal("path through a peer edge must not count as customer path")
	}
	if _, ok := g.CustomerPath(2, 2); ok {
		t.Fatal("self path must not exist")
	}
}

func TestAllCustomerPaths(t *testing.T) {
	// Diamond: two distinct customer paths 1→4.
	g := New()
	mustAdd(t, g.AddProviderCustomer(1, 2))
	mustAdd(t, g.AddProviderCustomer(1, 3))
	mustAdd(t, g.AddProviderCustomer(2, 4))
	mustAdd(t, g.AddProviderCustomer(3, 4))
	paths := g.AllCustomerPaths(1, 4, 0)
	if len(paths) != 2 {
		t.Fatalf("paths = %v, want 2", paths)
	}
	capped := g.AllCustomerPaths(1, 4, 1)
	if len(capped) != 1 {
		t.Fatalf("capped paths = %v, want 1", capped)
	}
	if got := g.AllCustomerPaths(4, 1, 0); len(got) != 0 {
		t.Fatalf("reverse paths = %v", got)
	}
}

func TestClassifyPath(t *testing.T) {
	g := figure1(t)
	cases := []struct {
		name string
		path bgp.Path
		want PathKind
	}{
		// Receiver r (not on path) gets [4 6]: AS4 announced its customer
		// AS6's route. Traversal: Rel(4,6)=customer. Valley-free.
		{"customer route", bgp.Path{4, 6}, PathValleyFree},
		// [3 4 6] at AS1: AS3 learned 6's prefix from its peer AS4. Rel(3,4)=peer,
		// Rel(4,6)=customer: peer then uphill-side — valley-free.
		{"peer then customer", bgp.Path{3, 4, 6}, PathValleyFree},
		// [5 2 4] would mean AS5 exported a route learned from its provider
		// AS2: Rel(5,2)=provider after start is downhill, then Rel(2,4)=customer
		// — provider followed by customer is still valley-free (down then up
		// seen from receiver is a normal transit path through the top).
		{"over the top", bgp.Path{5, 2, 4}, PathValleyFree},
		// [4 2 1 3]: Rel(4,2)=provider, Rel(2,1)=peer, Rel(1,3)=customer:
		// downhill, one peer, uphill — valley-free.
		{"down peer up", bgp.Path{4, 2, 1, 3}, PathValleyFree},
		// [6 4 2]: Rel(6,4)=provider then Rel(4,2)=provider — fine (all downhill).
		{"all downhill", bgp.Path{6, 4, 2}, PathValleyFree},
		// Valley: customer step then provider step. [2 4 ... wait — use
		// [1 3 4 2]: Rel(1,3)=customer, Rel(3,4)=peer → peer after uphill: valley.
		{"peer after uphill", bgp.Path{1, 3, 4, 2}, PathValley},
		// Two peer edges: [1 2 ...] no; craft [3 4 2 1]: Rel(3,4)=peer,
		// Rel(4,2)=provider → provider after peer: valley.
		{"provider after peer", bgp.Path{3, 4, 2, 1}, PathValley},
		// Unknown edge.
		{"unknown edge", bgp.Path{1, 99}, PathUnknown},
		// Prepending: repeated ASN is skipped, not an edge.
		{"prepended", bgp.Path{4, 4, 4, 6}, PathValleyFree},
		// Single-hop and empty paths are trivially valley-free.
		{"single", bgp.Path{4}, PathValleyFree},
		{"empty", nil, PathValleyFree},
	}
	for _, c := range cases {
		if got := g.ClassifyPath(c.path); got != c.want {
			t.Errorf("%s: ClassifyPath(%v) = %v, want %v", c.name, c.path, got, c.want)
		}
	}
}

func TestClassifyPathSiblingTransparent(t *testing.T) {
	g := New()
	mustAdd(t, g.AddProviderCustomer(1, 2))
	mustAdd(t, g.AddSibling(2, 3))
	mustAdd(t, g.AddProviderCustomer(3, 4))
	// [1 2 3 4] from some receiver: down to customer 2... Rel(1,2)=customer
	// (uphill side), sibling hop, then Rel(3,4)=customer. Valley-free.
	if got := g.ClassifyPath(bgp.Path{1, 2, 3, 4}); got != PathValleyFree {
		t.Fatalf("sibling path = %v", got)
	}
}

func TestPathKindString(t *testing.T) {
	if PathValleyFree.String() != "valley-free" || PathValley.String() != "valley" ||
		PathUnknown.String() != "unknown" || PathKind(9).String() != "invalid" {
		t.Fatal("PathKind names wrong")
	}
}
