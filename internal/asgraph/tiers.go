package asgraph

import (
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
)

// Tier classification in the style of Subramanian et al. (INFOCOM 2002),
// which the paper cites ([8]) for placing each vantage AS in the hierarchy:
// Tier-1 ASes sit at the top (no providers), and every other AS is one
// level below its highest-placed provider.

// TierUnknown marks ASes unreachable from any provider-less AS via
// provider→customer edges (possible when inference leaves an AS isolated
// or relationship annotations form a cycle).
const TierUnknown = 0

// Tiers assigns a hierarchy level to every AS: tier 1 for ASes with no
// providers (and at least one neighbor), tier(u) = 1 + min tier of u's
// providers otherwise. Isolated or unreachable ASes get TierUnknown.
func (g *Graph) Tiers() map[bgp.ASN]int {
	tiers := make(map[bgp.ASN]int, len(g.nodes))
	var frontier []bgp.ASN
	for asn := range g.nodes {
		if len(g.providers[asn]) == 0 && g.Degree(asn) > 0 {
			tiers[asn] = 1
			frontier = append(frontier, asn)
		}
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
	// BFS down provider→customer edges; a customer's tier is one more than
	// the smallest provider tier, so first assignment in BFS order is final.
	for len(frontier) > 0 {
		var next []bgp.ASN
		for _, u := range frontier {
			for _, c := range g.rawCustomers(u) {
				if _, done := tiers[c]; done {
					continue
				}
				tiers[c] = tiers[u] + 1
				next = append(next, c)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	for asn := range g.nodes {
		if _, done := tiers[asn]; !done {
			tiers[asn] = TierUnknown
		}
	}
	return tiers
}

// TierOne returns the provider-less, peer-connected top of the hierarchy
// in ascending order. Real Tier-1s form a peering clique; the generator
// guarantees it and inference approximates it.
func (g *Graph) TierOne() []bgp.ASN {
	var out []bgp.ASN
	for asn := range g.nodes {
		if len(g.providers[asn]) == 0 && g.Degree(asn) > 0 {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stubs returns ASes with no customers (the bottom of the hierarchy).
func (g *Graph) Stubs() []bgp.ASN {
	var out []bgp.ASN
	for asn := range g.nodes {
		if len(g.customers[asn]) == 0 && g.Degree(asn) > 0 {
			out = append(out, asn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMultihomed reports whether asn has at least two providers — the
// classification behind Table 8.
func (g *Graph) IsMultihomed(asn bgp.ASN) bool { return len(g.providers[asn]) >= 2 }
