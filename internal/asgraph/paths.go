package asgraph

import (
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
)

// This file implements the reachability primitives of the paper's Figure 4
// algorithm: "the first step ... is to find if an AS is a customer of a
// given provider. This can be solved by using Depth First Search in a
// directed graph to find a customer path from the provider to the AS."

// CustomerCone returns every direct or indirect customer of asn (asn
// excluded), in ascending order: the set reachable by repeatedly following
// provider→customer edges. Sibling edges do not extend the cone.
func (g *Graph) CustomerCone(asn bgp.ASN) []bgp.ASN {
	visited := map[bgp.ASN]bool{asn: true}
	stack := append([]bgp.ASN(nil), g.rawCustomers(asn)...)
	var cone []bgp.ASN
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[v] {
			continue
		}
		visited[v] = true
		cone = append(cone, v)
		stack = append(stack, g.rawCustomers(v)...)
	}
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
	return cone
}

// InCustomerCone reports whether o is a direct or indirect customer of u —
// Phase 2 of the Figure 4 algorithm.
func (g *Graph) InCustomerCone(u, o bgp.ASN) bool {
	if u == o {
		return false
	}
	visited := map[bgp.ASN]bool{u: true}
	stack := append([]bgp.ASN(nil), g.rawCustomers(u)...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == o {
			return true
		}
		if visited[v] {
			continue
		}
		visited[v] = true
		stack = append(stack, g.rawCustomers(v)...)
	}
	return false
}

// CustomerPath returns one customer path from provider u down to AS o,
// inclusive of both endpoints: every consecutive pair on the path has a
// provider-to-customer relationship ("from the direction of provider down
// to customer, each pair of ASs in the path should have
// provider-to-customer relationship"). The DFS prefers lower ASNs for
// determinism. ok is false when o is not in u's customer cone.
func (g *Graph) CustomerPath(u, o bgp.ASN) (path []bgp.ASN, ok bool) {
	if u == o {
		return nil, false
	}
	visited := map[bgp.ASN]bool{u: true}
	var dfs func(cur bgp.ASN, acc []bgp.ASN) []bgp.ASN
	dfs = func(cur bgp.ASN, acc []bgp.ASN) []bgp.ASN {
		if cur == o {
			return acc
		}
		for _, c := range sortedCopy(g.rawCustomers(cur)) {
			if visited[c] {
				continue
			}
			visited[c] = true
			if found := dfs(c, append(acc, c)); found != nil {
				return found
			}
		}
		return nil
	}
	found := dfs(u, []bgp.ASN{u})
	if found == nil {
		return nil, false
	}
	return found, true
}

// AllCustomerPaths returns every simple customer path from u to o, capped
// at max paths (0 = unlimited). Used by the SA-prefix verifier, which must
// check whether *some* customer path is active.
func (g *Graph) AllCustomerPaths(u, o bgp.ASN, max int) [][]bgp.ASN {
	var out [][]bgp.ASN
	onPath := map[bgp.ASN]bool{u: true}
	var dfs func(cur bgp.ASN, acc []bgp.ASN) bool // returns true when capped
	dfs = func(cur bgp.ASN, acc []bgp.ASN) bool {
		if cur == o {
			out = append(out, append([]bgp.ASN(nil), acc...))
			return max > 0 && len(out) >= max
		}
		for _, c := range sortedCopy(g.rawCustomers(cur)) {
			if onPath[c] {
				continue
			}
			onPath[c] = true
			stop := dfs(c, append(acc, c))
			onPath[c] = false
			if stop {
				return true
			}
		}
		return false
	}
	dfs(u, []bgp.ASN{u})
	return out
}

// PathKind classifies an AS path against the export rules of Section 2.2.
type PathKind int8

// Path classifications.
const (
	// PathValleyFree: uphill (customer→provider) segment, at most one
	// peer edge, then downhill (provider→customer). Sibling edges are
	// transparent.
	PathValleyFree PathKind = iota
	// PathValley: violates the export rules (e.g. provider→customer
	// followed by customer→provider, or two peer edges).
	PathValley
	// PathUnknown: some edge on the path is absent from the graph.
	PathUnknown
)

func (k PathKind) String() string {
	switch k {
	case PathValleyFree:
		return "valley-free"
	case PathValley:
		return "valley"
	case PathUnknown:
		return "unknown"
	}
	return "invalid"
}

// ClassifyPath walks an AS path (as stored on a route: nearest AS first)
// and reports whether it is valley-free under the graph's annotations.
//
// The walk direction matters. Propagation runs origin→receiver and a valid
// propagation is uphill (customer exports to provider), at most one peer
// edge, then downhill. A route's Path lists ASes nearest-first, so
// traversing it left-to-right replays propagation *backwards*: the allowed
// edge sequence becomes (b is a's provider)*, (peer)?, (b is a's
// customer)*.
func (g *Graph) ClassifyPath(path bgp.Path) PathKind {
	const (
		phaseProvider = iota // receiver-side downhill, seen as Rel==provider
		phasePeer
		phaseCustomer // origin-side uphill, seen as Rel==customer
	)
	phase := phaseProvider
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a == b {
			continue // prepending repeats an ASN; not an edge
		}
		rel := g.Rel(a, b) // what b is to a
		switch rel {
		case RelNone:
			return PathUnknown
		case RelSibling:
			continue
		case RelProvider: // b exported to its customer a: downhill step
			if phase != phaseProvider {
				return PathValley
			}
		case RelPeer:
			if phase != phaseProvider {
				return PathValley // second peer edge, or peer past the peak
			}
			phase = phasePeer
		case RelCustomer: // b exported to its provider a: uphill (origin) side
			phase = phaseCustomer
		}
	}
	return PathValleyFree
}
