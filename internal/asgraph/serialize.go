package asgraph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/policyscope/policyscope/internal/bgp"
)

// Serialization in the CAIDA AS-relationship file format the community
// standardized on after Gao's work:
//
//	# comment
//	<provider>|<customer>|-1
//	<peer>|<peer>|0
//	<sibling>|<sibling>|1
//
// Peer and sibling lines are written with the smaller ASN first.

// Relationship codes used by the file format.
const (
	codeProviderCustomer = -1
	codePeer             = 0
	codeSibling          = 1
)

// WriteTo serializes the graph. Lines are emitted in deterministic order.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	keys := make([][2]bgp.ASN, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		a, b := k[0], k[1]
		var line string
		switch g.edges[k] { // what b is to a
		case RelProvider:
			line = fmt.Sprintf("%d|%d|%d\n", b, a, codeProviderCustomer)
		case RelCustomer:
			line = fmt.Sprintf("%d|%d|%d\n", a, b, codeProviderCustomer)
		case RelPeer:
			line = fmt.Sprintf("%d|%d|%d\n", a, b, codePeer)
		case RelSibling:
			line = fmt.Sprintf("%d|%d|%d\n", a, b, codeSibling)
		}
		n, err := bw.WriteString(line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Read parses a CAIDA-format relationship file into a new graph. Comment
// lines beginning with '#' and blank lines are skipped.
func Read(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "|")
		if len(parts) < 3 {
			return nil, fmt.Errorf("asgraph: line %d: want a|b|rel, got %q", lineNo, line)
		}
		a, err := strconv.ParseUint(parts[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("asgraph: line %d: bad ASN %q", lineNo, parts[0])
		}
		b, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("asgraph: line %d: bad ASN %q", lineNo, parts[1])
		}
		code, err := strconv.Atoi(parts[2])
		if err != nil {
			return nil, fmt.Errorf("asgraph: line %d: bad code %q", lineNo, parts[2])
		}
		switch code {
		case codeProviderCustomer:
			err = g.AddProviderCustomer(bgp.ASN(a), bgp.ASN(b))
		case codePeer:
			err = g.AddPeer(bgp.ASN(a), bgp.ASN(b))
		case codeSibling:
			err = g.AddSibling(bgp.ASN(a), bgp.ASN(b))
		default:
			err = fmt.Errorf("unknown relationship code %d", code)
		}
		if err != nil {
			return nil, fmt.Errorf("asgraph: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}
