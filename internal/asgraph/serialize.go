package asgraph

import (
	"fmt"
	"io"
	"sort"

	"github.com/policyscope/policyscope/internal/bgp"
	"github.com/policyscope/policyscope/internal/relfile"
)

// Serialization in the CAIDA AS-relationship file format, delegated to
// internal/relfile (the one definition of the a|b|rel dialect). Peer
// and sibling lines are written with the smaller ASN first; lines are
// emitted in deterministic canonical-key order.

// Records returns the graph's edges as relationship-file records in
// the deterministic order WriteTo emits them: canonical (A, B)
// ascending, provider-customer records oriented provider first.
func (g *Graph) Records() []relfile.Record {
	keys := make([][2]bgp.ASN, 0, len(g.edges))
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	recs := make([]relfile.Record, 0, len(keys))
	for _, k := range keys {
		a, b := k[0], k[1]
		switch g.edges[k] { // what b is to a
		case RelProvider:
			recs = append(recs, relfile.Record{A: b, B: a, Code: relfile.CodeProviderCustomer})
		case RelCustomer:
			recs = append(recs, relfile.Record{A: a, B: b, Code: relfile.CodeProviderCustomer})
		case RelPeer:
			recs = append(recs, relfile.Record{A: a, B: b, Code: relfile.CodePeer})
		case RelSibling:
			recs = append(recs, relfile.Record{A: a, B: b, Code: relfile.CodeSibling})
		}
	}
	return recs
}

// WriteTo serializes the graph. Lines are emitted in deterministic order.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	return relfile.Write(w, g.Records())
}

// FromRecords builds a graph from relationship records, rejecting
// conflicting re-additions.
func FromRecords(recs []relfile.Record) (*Graph, error) {
	g := New()
	for _, rec := range recs {
		var err error
		switch rec.Code {
		case relfile.CodeProviderCustomer:
			err = g.AddProviderCustomer(rec.A, rec.B)
		case relfile.CodePeer:
			err = g.AddPeer(rec.A, rec.B)
		case relfile.CodeSibling:
			err = g.AddSibling(rec.A, rec.B)
		default:
			err = fmt.Errorf("unknown relationship code %d", rec.Code)
		}
		if err != nil {
			return nil, fmt.Errorf("asgraph: line %d: %v", rec.Line, err)
		}
	}
	return g, nil
}

// Read parses a CAIDA-format relationship file into a new graph. Comment
// lines beginning with '#' and blank lines are skipped.
func Read(r io.Reader) (*Graph, error) {
	recs, err := relfile.Read(r)
	if err != nil {
		return nil, err
	}
	return FromRecords(recs)
}
