package asgraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/policyscope/policyscope/internal/bgp"
)

func TestTiers(t *testing.T) {
	g := figure1(t)
	tiers := g.Tiers()
	want := map[bgp.ASN]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 2, 6: 3}
	for asn, w := range want {
		if tiers[asn] != w {
			t.Errorf("tier(%v) = %d, want %d", asn, tiers[asn], w)
		}
	}
}

func TestTiersMinProvider(t *testing.T) {
	// 10 (T1) -> 20 -> 30, and 10 -> 30 directly: 30 takes the shallower
	// placement, tier 2.
	g := New()
	mustAdd(t, g.AddProviderCustomer(10, 20))
	mustAdd(t, g.AddProviderCustomer(20, 30))
	mustAdd(t, g.AddProviderCustomer(10, 30))
	tiers := g.Tiers()
	if tiers[30] != 2 {
		t.Fatalf("tier(30) = %d, want 2 (min over providers)", tiers[30])
	}
}

func TestTiersUnknownForIsolated(t *testing.T) {
	g := New()
	g.AddNode(77)
	// Two ASes only peering with each other have no providers: both tier 1
	// by the provider-less rule. An isolated node is unknown.
	mustAdd(t, g.AddPeer(1, 2))
	tiers := g.Tiers()
	if tiers[77] != TierUnknown {
		t.Fatalf("tier(isolated) = %d", tiers[77])
	}
	if tiers[1] != 1 || tiers[2] != 1 {
		t.Fatalf("peer-only ASes: %d, %d", tiers[1], tiers[2])
	}
}

func TestTierOneAndStubs(t *testing.T) {
	g := figure1(t)
	t1 := g.TierOne()
	if len(t1) != 2 || t1[0] != 1 || t1[1] != 2 {
		t.Fatalf("TierOne = %v", t1)
	}
	stubs := g.Stubs()
	// ASes without customers: 3 (peer+provider only), 5, 6.
	if len(stubs) != 3 || stubs[0] != 3 || stubs[1] != 5 || stubs[2] != 6 {
		t.Fatalf("Stubs = %v", stubs)
	}
}

func TestIsMultihomed(t *testing.T) {
	g := figure1(t)
	if !g.IsMultihomed(5) {
		t.Fatal("AS5 has two providers")
	}
	if g.IsMultihomed(6) {
		t.Fatal("AS6 has one provider")
	}
	if g.IsMultihomed(1) {
		t.Fatal("AS1 has no providers")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g := figure1(t)
	mustAdd(t, g.AddSibling(7, 8))
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "1|2|0") {
		t.Fatalf("missing peer line:\n%s", text)
	}
	if !strings.Contains(text, "2|4|-1") {
		t.Fatalf("missing p2c line:\n%s", text)
	}
	if !strings.Contains(text, "7|8|1") {
		t.Fatalf("missing sibling line:\n%s", text)
	}

	back, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() || back.NumNodes() != g.NumNodes() {
		t.Fatalf("round trip: %d/%d edges, %d/%d nodes",
			back.NumEdges(), g.NumEdges(), back.NumNodes(), g.NumNodes())
	}
	for _, a := range g.Nodes() {
		for _, b := range g.Nodes() {
			if g.Rel(a, b) != back.Rel(a, b) {
				t.Fatalf("Rel(%v,%v) changed across round trip", a, b)
			}
		}
	}
}

func TestReadSkipsCommentsAndErrors(t *testing.T) {
	good := "# header\n\n1|2|-1\n"
	if _, err := Read(strings.NewReader(good)); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"1|2\n",
		"x|2|-1\n",
		"1|y|-1\n",
		"1|2|z\n",
		"1|2|7\n",
		"1|2|-1\n2|1|-1\n", // conflict
	}
	for _, b := range bad {
		if _, err := Read(strings.NewReader(b)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", b)
		}
	}
}

// TestPropertySerializeRoundTrip fuzzes random graphs through the format.
func TestPropertySerializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		g := New()
		n := 5 + r.Intn(20)
		for i := 0; i < n*2; i++ {
			a := bgp.ASN(1 + r.Intn(n))
			b := bgp.ASN(1 + r.Intn(n))
			if a == b {
				continue
			}
			switch r.Intn(3) {
			case 0:
				_ = g.AddProviderCustomer(a, b) // conflicts allowed to fail
			case 1:
				_ = g.AddPeer(a, b)
			case 2:
				_ = g.AddSibling(a, b)
			}
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, a := range g.Nodes() {
			for _, b := range g.Neighbors(a) {
				if g.Rel(a, b) != back.Rel(a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyConeConsistency: o in cone(u) ⇔ a customer path exists, and
// every returned customer path is strictly provider→customer annotated.
func TestPropertyConeConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := func() bool {
		g := New()
		n := 4 + r.Intn(12)
		// Build a random DAG-ish hierarchy: provider has smaller ASN.
		for i := 0; i < n*2; i++ {
			a := bgp.ASN(1 + r.Intn(n))
			b := bgp.ASN(1 + r.Intn(n))
			if a < b {
				_ = g.AddProviderCustomer(a, b)
			} else if a > b && r.Intn(4) == 0 {
				_ = g.AddPeer(b, a)
			}
		}
		nodes := g.Nodes()
		if len(nodes) < 2 {
			return true
		}
		u := nodes[r.Intn(len(nodes))]
		cone := map[bgp.ASN]bool{}
		for _, c := range g.CustomerCone(u) {
			cone[c] = true
		}
		for _, o := range nodes {
			if o == u {
				continue
			}
			path, ok := g.CustomerPath(u, o)
			if ok != cone[o] || ok != g.InCustomerCone(u, o) {
				return false
			}
			if !ok {
				continue
			}
			if path[0] != u || path[len(path)-1] != o {
				return false
			}
			for i := 0; i+1 < len(path); i++ {
				if g.Rel(path[i], path[i+1]) != RelCustomer {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
